"""The generative timeline engine.

Runs the world day by day from launch (November 2022) to the end of the
measurement window (May 2024): signups, daily sessions (posts / likes /
reposts / follows / blocks), feed creation, labeler startups and label
emission, handle changes, tombstones, and identity-churn noise — all
calibrated to the paper's published magnitudes (see config.py).
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.atproto.lexicon import (
    BLOCK,
    FOLLOW,
    LIKE,
    POST,
    PROFILE,
    REPOST,
    WHTWND_ENTRY,
)
from repro.services.feedgen import PostFeatures, tokenize
from repro.simulation import vocab
from repro.simulation.clock import (
    US_PER_DAY,
    US_PER_SECOND,
    date_us,
    day_range,
    iso_timestamp,
)
from repro.simulation.config import (
    LABEL_SNAPSHOT_US,
    PUBLIC_OPENING_US,
    SimulationConfig,
)
from repro.simulation.sampling import CumulativeSampler
from repro.simulation.labelers import (
    TRIGGER_AI,
    TRIGGER_FF14,
    TRIGGER_MISSING_ALT,
    TRIGGER_NSFW,
    TRIGGER_RANDOM,
    TRIGGER_SCREENSHOT,
    TRIGGER_TENOR,
    LabelerRuntime,
)
from repro.simulation.world import UserState, World

# Daily per-active-user operation rates (April 2024 status: 500K DAU doing
# 3M likes / 800K posts / 300K reposts per day).
RATE_LIKES = 6.0
RATE_POSTS = 1.6
RATE_REPOSTS = 0.6
RATE_FOLLOWS_DAILY = 0.12
RATE_BLOCKS_DAILY = 0.02
FEED_LIKE_SHARE = 0.02  # share of likes that go to feed generators
LABELER_LIKE_SHARE = 0.002  # share of likes that go to labeler services
DELETE_LIKE_RATE = 0.004
DELETE_POST_RATE = 0.002
BOGUS_TIMESTAMP_RATE = 2.5e-4  # posts predating Bluesky (Section 7.1 bug)
WHTWND_RATE = 2e-5  # non-Bluesky records on the firehose (Section 4)
IDENTITY_NOISE_RATE = 0.0017  # identity events per commit (Table 1)

# Posts in the paper's labeler window at full scale, used to convert the
# manual labelers' expected totals (Table 6) into per-post probabilities.
FULL_SCALE_WINDOW_POSTS = 40_000_000.0

OFFICIAL_MANUAL_VALUES = ("spam", "intolerant", "threat", "sexual-figurative", "!takedown")
OFFICIAL_MANUAL_RATE = 3e-5
OFFICIAL_MANUAL_MEDIAN_S = 40_000.0

# Account-level label rates (per signup; Table 4 counts over 5.5M users).
ACCOUNT_LABEL_RATES = (
    ("!takedown", 2_643 / 5.5e6),
    ("spam", 1_067 / 5.5e6),
    ("impersonation", 575 / 5.5e6),
)

# Timeline milestones, parsed once at import time (active_fraction runs
# for every simulated day and used to re-parse these on each call).
RAMP_START_US = date_us("2023-01-01")
RAMP_END_US = date_us("2023-07-01")
DECLINE_START_US = date_us("2024-03-01")
DECLINE_END_US = date_us("2024-05-11")
HANDLE_CHURN_START_US = date_us("2024-03-01")
TOMBSTONE_WINDOW_START_US = date_us("2024-03-06")


def poisson(rng: random.Random, lam: float) -> int:
    """Knuth's method; fine for the small rates used here."""
    if lam <= 0:
        return 0
    threshold = math.exp(-lam)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


def active_fraction(day_us: int) -> float:
    """Share of joined users active on a given day (Figure 1 shape)."""
    if day_us < RAMP_START_US:
        return 0.35
    if day_us < RAMP_END_US:
        ramp = (day_us - RAMP_START_US) / (RAMP_END_US - RAMP_START_US)
        return 0.32 - 0.15 * ramp
    if day_us < PUBLIC_OPENING_US:
        return 0.125
    if day_us < DECLINE_START_US:
        return 0.145
    # Post-opening decline: the paper observes ~60K fewer daily actives
    # between March and May 2024.  (Clamped for extended-timeline runs,
    # e.g. the Brazil-ban scenario reaching into autumn 2024.)
    ramp = (day_us - DECLINE_START_US) / (DECLINE_END_US - DECLINE_START_US)
    return max(0.08, 0.135 - 0.038 * ramp)


@dataclass
class _RecentPost:
    uri: str
    cid: str
    author_did: str
    time_us: int


class Engine:
    """Executes a world's timeline."""

    def __init__(self, world: World):
        self.world = world
        self.config: SimulationConfig = world.config
        self.rng = random.Random(world.config.seed ^ 0xE17)
        # Engagement-weighted pool of joined users.  The sampler keeps its
        # cumulative-weight table warm across draws (rng.choices would
        # rebuild it for every day's activity draw); its RNG stream is
        # bit-identical to rng.choices(weights=...).  ``_joined`` aliases
        # the sampler's item list for the uniform-access paths.
        self._active_sampler: CumulativeSampler[UserState] = CumulativeSampler()
        self._joined: list[UserState] = self._active_sampler.items
        self._follow_pool: list[str] = []  # DIDs, multiplicity ∝ attractiveness
        self._recent_posts: deque[_RecentPost] = deque(maxlen=4000)
        self._popular_posts: deque[_RecentPost] = deque(maxlen=500)
        self._commits_today = 0
        self._spam_accounts: list[str] = []
        self._impersonators: list[UserState] = []
        self._official_did: Optional[str] = None
        self._newspaper_dids: list[str] = []
        # Per-viewer recent likes feeding personalized feeds.
        self.world.recent_likes_by_viewer = {}
        # Like-target pools, maintained incrementally as feeds are announced
        # and labelers come online (previously rebuilt per like).
        self._feed_sampler: CumulativeSampler = CumulativeSampler()
        self._labeler_like_sampler: CumulativeSampler[str] = CumulativeSampler()
        # Lazily cached [u for u in _impersonators if not u.tombstoned],
        # invalidated via the world's tombstone epoch.
        self._live_impersonators: Optional[list[UserState]] = None
        self._impersonator_epoch = -1
        registry = world.telemetry.registry
        self._m_days = registry.counter("sim_days_total")
        self._m_signups = registry.counter("sim_signups_total")
        self._m_commits = registry.counter("sim_commits_total")

    # ---------------------------------------------------------------- run --

    def run(self, progress=None) -> None:
        config = self.config
        signups = sorted(
            (u for u in self.world.users), key=lambda u: u.spec.signup_us
        )
        feed_starts = sorted(self.world.feeds, key=lambda f: f.spec.created_us)
        labeler_starts = sorted(self.world.labelers, key=lambda l: l.spec.start_us)
        handle_changes = self._schedule_handle_changes()
        tombstones = self._schedule_tombstones()

        scheduled = sorted(self.world.scheduled_actions, key=lambda item: item[0])
        signup_i = feed_i = labeler_i = handle_i = tomb_i = sched_i = 0
        rate_adj = config.activity_scale

        # The engine replays the whole world deterministically on every
        # run (including after a resume), so its families are recounted
        # from zero rather than checkpointed — clearing keeps a resumed
        # run's totals equal to an uninterrupted run's.
        tracer = self.world.telemetry.tracer
        for family in (self._m_days, self._m_signups, self._m_commits):
            family.clear()

        for day_us in day_range(config.start_us, config.end_us):
            day_end = day_us + US_PER_DAY
            self._commits_today = 0
            day_traced = tracer.enabled and tracer.sampled("sim-day")
            day_wall0 = tracer.wall_us() if day_traced else 0.0
            # Keep the service directory's clock roughly current so
            # time-windowed faults apply to calls made outside the
            # retry helper (which sets it precisely per attempt).
            self.world.services.now_us = day_us

            while signup_i < len(signups) and signups[signup_i].spec.signup_us < day_end:
                self._do_signup(signups[signup_i])
                signup_i += 1
            while (
                labeler_i < len(labeler_starts)
                and labeler_starts[labeler_i].spec.start_us < day_end
            ):
                runtime = labeler_starts[labeler_i]
                self.world.start_labeler(runtime, day_us + self.rng.randrange(US_PER_DAY))
                if runtime.spec.expected_likes:
                    self._labeler_like_sampler.append(
                        "at://%s/app.bsky.labeler.service/self" % runtime.did,
                        float(runtime.spec.expected_likes),
                    )
                labeler_i += 1
            while feed_i < len(feed_starts) and feed_starts[feed_i].spec.created_us < day_end:
                runtime = feed_starts[feed_i]
                self.world.create_feed(runtime, day_us + self.rng.randrange(US_PER_DAY))
                if runtime.announced:
                    # Popular creators draw more likes to their feeds (the
                    # paper's r=0.533 between feed likes and followers).
                    creator = self.world.users[runtime.spec.creator_index]
                    boost = math.sqrt(max(1.0, creator.spec.attractiveness))
                    self._feed_sampler.append(runtime, runtime.spec.like_weight * boost)
                feed_i += 1

            self._run_day_activity(day_us, rate_adj)

            while handle_i < len(handle_changes) and handle_changes[handle_i][0] < day_end:
                _, user, new_handle = handle_changes[handle_i]
                if user.joined and not user.tombstoned:
                    self.world.change_handle(user, new_handle, day_us + self.rng.randrange(US_PER_DAY))
                handle_i += 1
            while tomb_i < len(tombstones) and tombstones[tomb_i][0] < day_end:
                _, user = tombstones[tomb_i]
                if user.joined and not user.tombstoned:
                    self.world.tombstone_user(user, day_us + self.rng.randrange(US_PER_DAY))
                tomb_i += 1

            self._identity_noise(day_us)
            while sched_i < len(scheduled) and scheduled[sched_i][0] < day_end:
                scheduled[sched_i][1](day_end - 1)
                sched_i += 1
            self._m_days.inc()
            self._m_commits.inc((), self._commits_today)
            if day_traced:
                tracer.complete(
                    "sim-day %s" % iso_timestamp(day_us)[:10],
                    "sim",
                    day_wall0,
                    args={"commits": self._commits_today},
                    virtual_ts_us=day_us,
                    virtual_dur_us=US_PER_DAY,
                )
            if progress is not None and day_us % (30 * US_PER_DAY) < US_PER_DAY:
                progress("simulated through %s" % iso_timestamp(day_us)[:10])

        # Fire any actions scheduled at/after the end of the timeline.
        while sched_i < len(scheduled):
            scheduled[sched_i][1](config.end_us - 1)
            sched_i += 1

        self._finalize_labels()
        self.world.appview.sync_labels()

    # ---------------------------------------------------------- lifecycle --

    def _do_signup(self, user: UserState) -> None:
        now_us = user.spec.signup_us
        self.world.signup(user, now_us)
        self._m_signups.inc()
        self._active_sampler.append(user, user.spec.engagement)
        multiplicity = 1 + min(50, int(user.spec.attractiveness))
        self._follow_pool.extend([user.did] * multiplicity)
        if user.spec.is_official:
            self._official_did = user.did
        elif user.spec.is_newspaper:
            self._newspaper_dids.append(user.did)
        if user.spec.is_impersonator:
            self._impersonators.append(user)
            self._live_impersonators = None  # pool changed; recompute lazily
        if user.spec.is_official or self.rng.random() < 0.6:
            self._set_profile(user, now_us)
        self._initial_follows(user, now_us)
        if self.rng.random() < 0.002:
            self._spam_accounts.append(user.did)
        self._maybe_label_account(user, now_us)

    def _set_profile(self, user: UserState, now_us: int) -> None:
        record = {
            "$type": PROFILE,
            "displayName": user.spec.username,
            "description": user.spec.profile_description
            or vocab.make_post_text(self.rng, user.spec.lang)[:60],
            "createdAt": iso_timestamp(now_us),
        }
        user.pds.create_record(user.did, PROFILE, record, now_us, rkey="self")
        self._commits_today += 1
        # NSFW-heavy accounts attract official labels on their avatar/banner.
        if user.spec.nsfw_rate > 0.3:
            official = self.world.official_labeler()
            if official.service is not None and self.rng.random() < 0.5:
                uri = "at://%s/app.bsky.actor.profile/self" % user.did
                value = official.spec.profile_values[
                    self.rng.randrange(len(official.spec.profile_values))
                ]
                delay = official.spec.reaction.sample_us(self.rng) * 50
                official.service.emit(uri, value, now_us + delay)

    def _pick_follow_target(self, user: UserState) -> Optional[str]:
        """Preferential attachment with explicit celebrity bias: the
        official Bluesky account accrues ~14% of all follows (775K of
        5.5M users), newspapers a few percent each (Section 4)."""
        rng = self.rng
        roll = rng.random()
        if roll < 0.13:
            if self._official_did and self._official_did != user.did:
                return self._official_did
        elif roll < 0.21 and self._newspaper_dids:
            target = self._newspaper_dids[rng.randrange(len(self._newspaper_dids))]
            if target != user.did:
                return target
        if not self._follow_pool:
            return None
        target = self._follow_pool[rng.randrange(len(self._follow_pool))]
        return None if target == user.did else target

    def _initial_follows(self, user: UserState, now_us: int) -> None:
        count = min(user.spec.follow_initial, max(1, len(self._follow_pool) // 2))
        t = now_us
        for _ in range(count):
            target = self._pick_follow_target(user)
            if target is None:
                continue
            t += self.rng.randrange(1, 30 * US_PER_SECOND)
            record = {"$type": FOLLOW, "subject": target, "createdAt": iso_timestamp(t)}
            user.pds.create_record(user.did, FOLLOW, record, t)
            self._commits_today += 1

    def _maybe_label_account(self, user: UserState, now_us: int) -> None:
        official = self.world.official_labeler()
        if official.service is None:
            return
        for value, rate in ACCOUNT_LABEL_RATES:
            if self.rng.random() < rate:
                delay_us = int(self.rng.uniform(1, 20) * US_PER_DAY)
                official.service.emit(user.did, value, now_us + delay_us)
        if user.spec.is_impersonator:
            delay_us = int(self.rng.uniform(1, 10) * US_PER_DAY)
            official.service.emit(user.did, "impersonation", now_us + delay_us)

    def _schedule_handle_changes(self) -> list:
        scheduled = []
        # Handle churn concentrates in early 2024, when alternative
        # subdomain providers appeared (Section 5, "User Handles Updates");
        # the paper observes all 44K updates inside its firehose window.
        churn_start = max(self.config.start_us, HANDLE_CHURN_START_US)
        for user in self.world.users:
            spec = user.spec
            if not spec.will_change_handle:
                continue
            start = max(spec.signup_us, churn_start)
            span = max(US_PER_DAY, (self.config.end_us - start) // (spec.handle_changes + 1))
            t = start
            for change in range(spec.handle_changes):
                t += self.rng.randrange(1, span)
                if t >= self.config.end_us:
                    break
                is_last = change == spec.handle_changes - 1
                if is_last and not spec.final_handle_custom:
                    new_handle = "%s.bsky.social" % spec.username
                else:
                    new_handle = "%s%d.handle.example" % (spec.username, change)
                scheduled.append((t, user, new_handle))
        scheduled.sort(key=lambda item: item[0])
        return scheduled

    def _schedule_tombstones(self) -> list:
        scheduled = []
        window_start = TOMBSTONE_WINDOW_START_US
        for user in self.world.users:
            if not user.spec.will_tombstone:
                continue
            if self.rng.random() < 0.6 and user.spec.signup_us < window_start:
                # Most removals land in the measurement window (moderation
                # wave), matching Table 1's tombstone share.
                t = window_start + int(self.rng.random() * (self.config.end_us - window_start))
            else:
                t = user.spec.signup_us + int(self.rng.uniform(10, 200) * US_PER_DAY)
            if t < self.config.end_us:
                scheduled.append((t, user))
        scheduled.sort(key=lambda item: item[0])
        return scheduled

    # ---------------------------------------------------------- daily loop --

    def _run_day_activity(self, day_us: int, rate_adj: float) -> None:
        if not self._joined:
            return
        target = int(active_fraction(day_us) * len(self._joined))
        if target <= 0:
            return
        actives = self._active_sampler.sample_k(self.rng, target)
        seen: set[int] = set()
        for user in actives:
            if user.spec.index in seen or user.tombstoned or not user.joined:
                continue
            seen.add(user.spec.index)
            self._run_session(
                user, day_us + self.rng.randrange(US_PER_DAY), day_us + US_PER_DAY, rate_adj
            )

    def _run_session(
        self, user: UserState, session_us: int, day_end_us: int, rate_adj: float
    ) -> None:
        """One user session; op times are clamped to the session's day so
        snapshots scheduled at day boundaries stay causally consistent."""
        rng = self.rng
        cap = day_end_us - 1
        t = session_us
        for _ in range(poisson(rng, RATE_POSTS * rate_adj)):
            t = min(cap, t + rng.randrange(1, 180 * US_PER_SECOND))
            self._create_post(user, t)
        for _ in range(poisson(rng, RATE_LIKES * rate_adj)):
            t = min(cap, t + rng.randrange(1, 60 * US_PER_SECOND))
            self._create_like(user, t)
        for _ in range(poisson(rng, RATE_REPOSTS * rate_adj)):
            t = min(cap, t + rng.randrange(1, 60 * US_PER_SECOND))
            self._create_repost(user, t)
        for _ in range(poisson(rng, RATE_FOLLOWS_DAILY * rate_adj)):
            t = min(cap, t + rng.randrange(1, 60 * US_PER_SECOND))
            self._create_follow(user, t)
        if rng.random() < RATE_BLOCKS_DAILY * rate_adj:
            t = min(cap, t + rng.randrange(1, 60 * US_PER_SECOND))
            self._create_block(user, t)
        if user.spec.is_whitewind_blogger and rng.random() < 0.06:
            # The small WhiteWind long-form blogging community (Section 4,
            # non-Bluesky content on the firehose).
            t = min(cap, t + rng.randrange(1, 60 * US_PER_SECOND))
            self._create_whitewind_entry(user, t)

    # ------------------------------------------------------------- content --

    def _create_post(self, user: UserState, now_us: int) -> None:
        rng = self.rng
        spec = user.spec
        attrs = {
            "nsfw": rng.random() < spec.nsfw_rate,
            "tenor": rng.random() < spec.tenor_rate,
            "screenshot": rng.random() < spec.screenshot_rate,
            "ai_tag": rng.random() < spec.ai_tag_rate,
            "ff14": rng.random() < spec.ff14_rate,
        }
        has_media = attrs["screenshot"] or rng.random() < spec.media_rate
        attrs["missing_alt"] = has_media and rng.random() < spec.missing_alt_rate

        topic = None
        if attrs["nsfw"]:
            topic = "nsfw"
        elif attrs["ff14"]:
            topic = "ff14"
        elif rng.random() < 0.4:
            topic = vocab.pick_weighted(rng, vocab.TOPICS)
        text = vocab.make_post_text(rng, spec.lang, topic)
        if attrs["ai_tag"]:
            text += " #aiart"

        created_at = iso_timestamp(now_us)
        if rng.random() < BOGUS_TIMESTAMP_RATE:
            # The timestamp bug the paper reported upstream: client-supplied
            # createdAt long before the platform (or the epoch) existed.
            year = rng.choice((1185, 1776, 1923))
            created_at = "%04d-07-01T00:00:00.000Z" % year

        record = {"$type": POST, "text": text, "createdAt": created_at}
        if rng.random() < 0.9:
            record["langs"] = [spec.lang]
        if has_media:
            alt = "" if attrs["missing_alt"] else "description of the image"
            record["embed"] = {"images": [{"alt": alt}]}
        elif attrs["tenor"]:
            record["embed"] = {"external": {"uri": "https://media.tenor.com/clip.gif"}}

        meta = user.pds.create_record(user.did, POST, record, now_us)
        self._commits_today += 1
        path = meta.ops[0][1]
        uri = "at://%s/%s" % (user.did, path)
        recent = _RecentPost(uri, str(meta.ops[0][2]), user.did, now_us)
        self._recent_posts.append(recent)
        if spec.attractiveness > 8.0:
            self._popular_posts.append(recent)

        features = PostFeatures(
            uri=uri,
            author=user.did,
            time_us=now_us,
            text=text,
            langs=tuple(record.get("langs", ())),
            tokens=frozenset(tokenize(text)),
            has_media=has_media or attrs["tenor"],
        )
        self.world.feed_router.route(features)
        self._apply_labels(uri, attrs, now_us)

        if self.rng.random() < DELETE_POST_RATE:
            rkey = path.split("/", 1)[1]
            user.pds.delete_record(user.did, POST, rkey, now_us + 60 * US_PER_SECOND)
            self._commits_today += 1

    def _create_whitewind_entry(self, user: UserState, now_us: int) -> None:
        record = {
            "$type": WHTWND_ENTRY,
            "content": "# " + vocab.make_post_text(self.rng, user.spec.lang),
            "title": "blog entry",
            "createdAt": iso_timestamp(now_us),
        }
        user.pds.create_record(user.did, WHTWND_ENTRY, record, now_us)
        self._commits_today += 1

    def _create_like(self, user: UserState, now_us: int) -> None:
        rng = self.rng
        roll = rng.random()
        if roll < FEED_LIKE_SHARE and self._feed_sampler:
            target = self._feed_sampler.sample(rng)
            subject_uri, subject_cid = target.uri, "feedgen"
        elif roll < FEED_LIKE_SHARE + LABELER_LIKE_SHARE and self._labeler_like_sampler:
            subject_uri = self._labeler_like_sampler.sample(rng)
            subject_cid = "labeler"
        else:
            post = self._pick_post()
            if post is None:
                return
            subject_uri, subject_cid = post.uri, post.cid
        record = {
            "$type": LIKE,
            "subject": {"uri": subject_uri, "cid": subject_cid},
            "createdAt": iso_timestamp(now_us),
        }
        meta = user.pds.create_record(user.did, LIKE, record, now_us)
        self._commits_today += 1
        likes = self.world.recent_likes_by_viewer.setdefault(user.did, deque(maxlen=20))
        likes.append((subject_uri, now_us))
        if rng.random() < DELETE_LIKE_RATE:
            rkey = meta.ops[0][1].split("/", 1)[1]
            user.pds.delete_record(user.did, LIKE, rkey, now_us + 120 * US_PER_SECOND)
            self._commits_today += 1

    def _create_repost(self, user: UserState, now_us: int) -> None:
        post = self._pick_post()
        if post is None:
            return
        record = {
            "$type": REPOST,
            "subject": {"uri": post.uri, "cid": post.cid},
            "createdAt": iso_timestamp(now_us),
        }
        user.pds.create_record(user.did, REPOST, record, now_us)
        self._commits_today += 1

    def _create_follow(self, user: UserState, now_us: int) -> None:
        target = self._pick_follow_target(user)
        if target is None:
            return
        record = {"$type": FOLLOW, "subject": target, "createdAt": iso_timestamp(now_us)}
        user.pds.create_record(user.did, FOLLOW, record, now_us)
        self._commits_today += 1

    def _live_impersonator_pool(self) -> list[UserState]:
        """The non-tombstoned impersonators, rebuilt only when an account
        joins the pool or any account is tombstoned (epoch check)."""
        epoch = self.world.tombstone_epoch
        cached = self._live_impersonators
        if cached is None or epoch != self._impersonator_epoch:
            cached = [u for u in self._impersonators if not u.tombstoned]
            self._live_impersonators = cached
            self._impersonator_epoch = epoch
        return cached

    def _create_block(self, user: UserState, now_us: int) -> None:
        rng = self.rng
        impersonators = self._live_impersonator_pool()
        if impersonators and rng.random() < 0.7:
            target = rng.choice(impersonators).did
        elif self._follow_pool:
            target = self._follow_pool[rng.randrange(len(self._follow_pool))]
        else:
            return
        if target == user.did:
            return
        record = {"$type": BLOCK, "subject": target, "createdAt": iso_timestamp(now_us)}
        user.pds.create_record(user.did, BLOCK, record, now_us)
        self._commits_today += 1

    def _pick_post(self) -> Optional[_RecentPost]:
        rng = self.rng
        if self._popular_posts and rng.random() < 0.35:
            return self._popular_posts[rng.randrange(len(self._popular_posts))]
        if self._recent_posts:
            return self._recent_posts[rng.randrange(len(self._recent_posts))]
        return None

    # ------------------------------------------------------------- labeling --

    def _apply_labels(self, uri: str, attrs: dict, now_us: int) -> None:
        rng = self.rng
        for runtime in self.world.labelers:
            spec = runtime.spec
            if runtime.service is None or now_us < spec.start_us:
                continue
            triggered_value: Optional[str] = None
            if spec.trigger == TRIGGER_NSFW and attrs["nsfw"]:
                if rng.random() < spec.trigger_probability:
                    roll = rng.random()
                    if roll < 0.62:
                        triggered_value = "porn"
                    elif roll < 0.87:
                        triggered_value = "sexual"
                    elif roll < 0.94:
                        triggered_value = "nudity"
                    else:
                        triggered_value = "graphic-media"
            elif spec.trigger == TRIGGER_MISSING_ALT and attrs["missing_alt"]:
                if rng.random() < spec.trigger_probability:
                    roll = rng.random()
                    triggered_value = "no-alt-text" if roll < 0.97 else spec.values[1]
            elif spec.trigger == TRIGGER_TENOR and attrs["tenor"]:
                if rng.random() < spec.trigger_probability:
                    triggered_value = spec.values[0] if rng.random() < 0.8 else spec.values[1]
            elif spec.trigger == TRIGGER_SCREENSHOT and attrs["screenshot"]:
                if rng.random() < spec.trigger_probability:
                    triggered_value = spec.values[rng.randrange(len(spec.values))]
            elif spec.trigger == TRIGGER_AI and attrs["ai_tag"]:
                if rng.random() < spec.trigger_probability:
                    triggered_value = spec.values[0]
            elif spec.trigger == TRIGGER_FF14 and attrs["ff14"]:
                if rng.random() < spec.trigger_probability:
                    triggered_value = spec.values[rng.randrange(len(spec.values))]
            elif spec.trigger == TRIGGER_RANDOM:
                probability = spec.trigger_probability / FULL_SCALE_WINDOW_POSTS
                if rng.random() < probability:
                    triggered_value = spec.value_for(rng)
            if triggered_value is None:
                continue
            delay_us = spec.reaction.sample_us(rng)
            label = runtime.service.emit(uri, triggered_value, now_us + delay_us)
            runtime.values_emitted.add(triggered_value)
            if rng.random() < spec.rescind_rate:
                runtime.service.rescind(
                    uri, triggered_value, now_us + delay_us + rng.randrange(1, 48 * 3600) * US_PER_SECOND
                )
        # The official labeler also runs slow, manual review queues.
        official = self.world.official_labeler()
        if official.service is not None and rng.random() < OFFICIAL_MANUAL_RATE * 40:
            if rng.random() < 0.025:
                value = OFFICIAL_MANUAL_VALUES[rng.randrange(len(OFFICIAL_MANUAL_VALUES))]
                delay_us = int(
                    OFFICIAL_MANUAL_MEDIAN_S
                    * math.exp(rng.gauss(0.0, 1.8))
                    * US_PER_SECOND
                )
                official.service.emit(uri, value, now_us + delay_us)

    def _finalize_labels(self) -> None:
        """Guarantee every by-construction-active labeler issued a label
        *visible by the label-dataset cutoff* (labels whose cts lies beyond
        2024-05-01 do not exist yet when the study closes)."""
        for runtime in self.world.labelers:
            if runtime.service is None:
                continue
            key = runtime.spec.key
            should_be_active = not (key.startswith("idle") or key.startswith("broken"))
            visible = any(
                label.cts <= LABEL_SNAPSHOT_US
                for label in runtime.service.xrpc_subscribeLabels(cursor=0)
            )
            if should_be_active and not visible and self._recent_posts:
                # Pick a post old enough that the (slow, manual) reaction
                # time survives the clamp to the dataset cutoff: a forced
                # label must not look like a sub-second automated one.
                margin = 5 * US_PER_DAY
                eligible = [
                    p for p in self._recent_posts if p.time_us <= LABEL_SNAPSHOT_US - margin
                ]
                pool = eligible if eligible else list(self._recent_posts)
                post = pool[self.rng.randrange(len(pool))]
                delay_us = runtime.spec.reaction.sample_us(self.rng)
                # Emission happens while the labeler is live (possibly a
                # retroactive label on an old post) and before the cutoff.
                cts = min(
                    max(post.time_us + delay_us, runtime.spec.start_us + 3600 * US_PER_SECOND),
                    LABEL_SNAPSHOT_US - US_PER_SECOND,
                )
                runtime.service.emit(post.uri, runtime.spec.values[0], cts)

    # ------------------------------------------------------------ identity --

    def _identity_noise(self, day_us: int) -> None:
        """Background #identity events (cache invalidations, key rotations)."""
        expected = self._commits_today * IDENTITY_NOISE_RATE
        for _ in range(poisson(self.rng, expected)):
            if not self._joined:
                return
            user = self._joined[self.rng.randrange(len(self._joined))]
            if user.tombstoned:
                continue
            self.world.relay.publish_identity_event(
                user.did, day_us + self.rng.randrange(US_PER_DAY)
            )

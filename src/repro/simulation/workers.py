"""Spawn-safe worker processes for the sharded simulation engine.

Each worker receives only the (picklable, scalar) :class:`SimulationConfig`
plus the set of logical shards it owns, builds a full **replica world**
from that config, and replays the global timeline exactly like the
coordinator (same replicated RNG streams — see ``engine._Streams``).  The
replica performs repository writes only for its owned shards and ships
each day's :class:`~repro.simulation.sharding.DayBatch` back over a pipe;
the coordinator merges batches with the deterministic sequencing rule, so
nothing about OS scheduling, pipe timing, or worker count can reach the
artefacts.

The protocol is a strict request/response lockstep per day tick:

``("day", day_us, update)``
    Apply the previous barrier's merged pool ``update``, replay the day
    (signups / labeler / feed starts), generate the owned shards'
    activity, apply handle changes and tombstones (state only), and
    reply ``("batches", [DayBatch, ...])``.
``("repos", [did, ...])``
    Export CAR files for owned repos (the relay's ``repo_reader`` path,
    used by the coordinator's repo-snapshot collectors).  Replies
    ``("repos", {did: car_bytes_or_None})``.
``("stop",)``
    Clean shutdown.

Worker-side exceptions are shipped back as ``("error", traceback_text)``
and re-raised in the coordinator as :class:`WorkerError` — a silent hang
would otherwise be indistinguishable from a slow day.

Spawn (not fork) is used deliberately: it is the only start method that
is safe on every platform, and it proves the replica state is genuinely
reconstructed from the config rather than inherited from a forked heap.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from typing import Optional

from repro.simulation.config import SimulationConfig


class WorkerError(RuntimeError):
    """A worker process raised; carries the remote traceback text."""


def _worker_main(conn, config: SimulationConfig, owned_shards: tuple) -> None:
    """Entry point of a spawned worker (module-level: must be picklable)."""
    try:
        # Imports happen here, in the child, after spawn.
        from repro.obs.telemetry import Telemetry
        from repro.simulation.engine import SimProcess
        from repro.simulation.world import World

        world = World(config, telemetry=Telemetry.disabled())
        sim = SimProcess(world, owned_shards)
        while True:
            message = conn.recv()
            op = message[0]
            if op == "day":
                _, day_us, update = message
                sim.apply_cross_shard_update(update)
                sim.begin_day(day_us)
                wall0 = time.perf_counter()  # repro: allow(wallclock) -- worker timing telemetry; excluded from batch digests
                batches = sim.generate_owned(day_us)
                gen_wall_us = (time.perf_counter() - wall0) * 1e6  # repro: allow(wallclock) -- worker timing telemetry; excluded from batch digests
                sim.replica_end_day(day_us)
                for batch in batches:
                    batch.gen_wall_us = gen_wall_us / max(1, len(batches))
                conn.send(("batches", batches))
            elif op == "repos":
                _, dids = message
                conn.send(("repos", {did: sim.export_repo_car(did) for did in dids}))
            elif op == "stop":
                break
            else:  # pragma: no cover - protocol misuse
                raise RuntimeError("unknown worker op %r" % (op,))
    except EOFError:  # coordinator went away; exit quietly
        pass
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        conn.close()


class WorkerPool:
    """The coordinator's handle on the spawned shard workers.

    Shard ``s`` is owned by worker ``s % workers``, so every worker holds
    a contiguous-stride set of shards and the mapping is a pure function
    of the configuration.
    """

    def __init__(self, config: SimulationConfig, workers: int):
        n_shards = config.sim_shards
        self.workers = max(1, min(workers, n_shards))
        ctx = multiprocessing.get_context("spawn")
        self._conns = []
        self._procs = []
        self._owned = [
            tuple(s for s in range(n_shards) if s % self.workers == w)
            for w in range(self.workers)
        ]
        # did -> worker index, for routing repo-reader fetches.
        self._repo_home: dict[str, int] = {}
        for w in range(self.workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, config, self._owned[w]),
                daemon=True,
                name="repro-shard-w%d" % w,
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)

    # -- protocol ------------------------------------------------------------

    def _recv(self, worker: int):
        try:
            reply = self._conns[worker].recv()
        except EOFError:
            raise WorkerError(
                "shard worker %d exited unexpectedly (exitcode=%s)"
                % (worker, self._procs[worker].exitcode)
            )
        if reply[0] == "error":
            raise WorkerError("shard worker %d failed:\n%s" % (worker, reply[1]))
        return reply

    def send_day(self, day_us: int, update: list) -> None:
        for conn in self._conns:
            conn.send(("day", day_us, update))

    def collect_batches(self) -> list:
        """Collect every worker's day batches, ordered by shard id."""
        batches = []
        for w in range(self.workers):
            _, worker_batches = self._recv(w)
            batches.extend(worker_batches)
        batches.sort(key=lambda batch: batch.shard_id)
        return batches

    # -- repo reading --------------------------------------------------------

    def fetch_repo_cars(self, dids) -> dict:
        """CAR bytes for the given DIDs, fanned out to the owning workers."""
        from repro.simulation.sharding import shard_of

        by_worker: dict[int, list] = {}
        unrouted = []
        for did in dids:
            worker = self._repo_home.get(did)
            if worker is None:
                unrouted.append(did)
            else:
                by_worker.setdefault(worker, []).append(did)
        result: dict = {}
        for did in unrouted:
            result[did] = None
        sent = []
        for worker, worker_dids in by_worker.items():
            self._conns[worker].send(("repos", worker_dids))
            sent.append(worker)
        for worker in sent:
            _, cars = self._recv(worker)
            result.update(cars)
        return result

    def note_repo_home(self, did: str, shard_id: int) -> None:
        """Record which worker owns a repo (called once per first commit)."""
        self._repo_home[did] = shard_id % self.workers

    def repo_reader(self):
        """The callable installed as ``relay.repo_reader``: did -> CAR."""

        def read(did: str) -> Optional[bytes]:
            return self.fetch_repo_cars([did]).get(did)

        return read

    def close_reader(self):
        """The reader to leave installed after shutdown (nothing)."""
        return None

    # -- lifecycle -----------------------------------------------------------

    def shutdown(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            conn.close()

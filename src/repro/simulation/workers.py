"""Spawn-safe, *supervised* worker processes for the sharded engine.

Each worker receives only the (picklable, scalar) :class:`SimulationConfig`
plus the set of logical shards it owns, builds a full **replica world**
from that config, and replays the global timeline exactly like the
coordinator (same replicated RNG streams — see ``engine._Streams``).  The
replica performs repository writes only for its owned shards and ships
each day's :class:`~repro.simulation.sharding.DayBatch` back over a pipe;
the coordinator merges batches with the deterministic sequencing rule, so
nothing about OS scheduling, pipe timing, or worker count can reach the
artefacts.

The protocol is a strict request/response lockstep per day tick:

``("day", day_us, update)``
    Apply the previous barrier's merged pool ``update``, replay the day
    (signups / labeler / feed starts), generate the owned shards'
    activity, apply handle changes and tombstones (state only), and
    reply ``("batches", [DayBatch, ...])``.
``("replay", day_us, update)``
    Identical computation to ``"day"`` (the replica must advance every
    RNG stream and state transition), but the batches are discarded and
    the reply is the cheap ack ``("replayed", day_us)``.  Used by the
    supervisor to fast-forward a freshly respawned worker through the
    recorded day log.
``("repos", [did, ...])``
    Export CAR files for owned repos (the relay's ``repo_reader`` path,
    used by the coordinator's repo-snapshot collectors).  Replies
    ``("repos", {did: car_bytes_or_None})``.
``("stop",)``
    Clean shutdown.

Liveness: every worker runs a daemon heartbeat thread sending
``("ping",)`` frames at a fixed interval, and the coordinator replaces
the old unbounded ``conn.recv()`` with a ``poll()`` loop that enforces
both a heartbeat deadline and a per-day wall-clock budget.  A dead pipe
or dead process is classified as :class:`WorkerCrashed`; a silent worker
whose process is still alive is classified as :class:`WorkerHung` —
previously the two were indistinguishable and a hang wedged the study
forever.

Recovery: the supervisor reaps the failed worker, respawns it (spawn
proves replicas rebuild from config alone), fast-forwards it by
replaying the day/update log recorded since the start of the run, and
re-issues the in-flight request.  Restarts per worker are bounded with
exponential backoff; when the budget is exhausted the worker's shards
are folded into an in-process :class:`_InlineReplica` owned by the
coordinator instead of aborting the study.  Because every fault fires at
a day-tick boundary *before* state mutation, and the replica replay is
deterministic, artefacts stay byte-identical to a fault-free run —
supervision surfaces only through volatile ``sim_worker_*`` metrics and
``supervisor.*`` trace spans.

Worker-side *application* exceptions are still shipped back as
``("error", traceback_text)`` and re-raised as plain
:class:`WorkerError`: an application error is deterministic, so a
restarted replica would deterministically hit it again — restarting
would loop, so it is fatal by design.

Spawn (not fork) is used deliberately: it is the only start method that
is safe on every platform, and it proves the replica state is genuinely
reconstructed from the config rather than inherited from a forked heap.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Optional

from repro.netsim.faults import (
    WORKER_FAULT_HANG,
    WORKER_FAULT_KILL,
    WORKER_FAULT_SLOW,
    WorkerFaultPlan,
)
from repro.simulation.config import SimulationConfig


def _now_s() -> float:
    """Supervision wall clock (never reaches simulated state/artefacts)."""
    return time.monotonic()  # repro: allow(wallclock) -- supervision deadlines only; never reaches artefacts


class WorkerError(RuntimeError):
    """A worker failed fatally; carries the remote traceback when known."""


class WorkerCrashed(WorkerError):
    """A worker process died (pipe EOF / dead process): recoverable."""


class WorkerHung(WorkerError):
    """A live worker missed its heartbeat or day deadline: recoverable."""


@dataclass(frozen=True)
class SupervisionPolicy:
    """Knobs for worker liveness detection and restart budgeting.

    The defaults are production-shaped (generous deadlines); the chaos
    tests shrink them so hang detection completes in ~a second.
    """

    #: How long each ``Connection.poll`` waits before re-checking liveness.
    poll_interval_s: float = 0.05
    #: Worker-side ping period.  ``0`` disables the heartbeat thread.
    heartbeat_interval_s: float = 0.25
    #: Silence longer than this from a live worker ⇒ :class:`WorkerHung`.
    heartbeat_timeout_s: float = 10.0
    #: Heartbeat deadline for an incarnation that has not sent anything
    #: yet: interpreter bootstrap after spawn is silent, so judging it by
    #: ``heartbeat_timeout_s`` would misread a slow start as a hang (and
    #: make the restart metrics load-dependent).  Pings begin before the
    #: replica world is even built, so this only needs to cover process
    #: startup + imports.
    spawn_grace_s: float = 30.0
    #: Per-request wall budget (a full day's generation) ⇒ hang if blown.
    day_deadline_s: float = 900.0
    #: Restarts allowed per worker slot before degrading to in-process.
    max_restarts_per_worker: int = 3
    #: Exponential backoff before each respawn (RetryPolicy-style).
    restart_backoff_s: float = 0.05
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 2.0
    #: ``False`` restores the legacy unbounded blocking recv (bench baseline).
    heartbeats: bool = True
    #: On budget exhaustion: fold shards into the coordinator (``True``)
    #: or raise :class:`WorkerError` (``False``).
    fallback_in_process: bool = True
    #: Directory for crash flight-recorder dumps (``flight-w<idx>.json``
    #: written on WorkerCrashed/WorkerHung); ``None`` keeps the ring
    #: in memory only.  Volatile by contract: never folded into
    #: fingerprints — it describes *this process chain's* faults.
    flight_dir: Optional[str] = None
    #: Ring capacity of per-slot flight entries retained coordinator-side.
    flight_capacity: int = 64

    def backoff_s(self, attempt: int) -> float:
        """Backoff before restart ``attempt`` (1-based), capped."""
        raw = self.restart_backoff_s * (self.backoff_multiplier ** max(0, attempt - 1))
        return min(raw, self.max_backoff_s)


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


def _run_replica_day(sim, day_us: int, update) -> tuple:
    """One full replica day; returns (batches, gen_wall_us)."""
    sim.apply_cross_shard_update(update)
    sim.begin_day(day_us)
    wall0 = time.perf_counter()  # repro: allow(wallclock) -- worker timing telemetry; excluded from batch digests
    batches = sim.generate_owned(day_us)
    gen_wall_us = (time.perf_counter() - wall0) * 1e6  # repro: allow(wallclock) -- worker timing telemetry; excluded from batch digests
    sim.replica_end_day(day_us)
    return batches, gen_wall_us


def _worker_main(
    conn,
    config: SimulationConfig,
    owned_shards: tuple,
    faults: tuple = (),
    heartbeat_interval_s: float = 0.0,
) -> None:
    """Entry point of a spawned worker (module-level: must be picklable).

    ``faults`` is this worker's slice of a :class:`WorkerFaultPlan`,
    pre-pruned by the supervisor so a respawned incarnation never re-fires
    a fault it already consumed.  Faults key on the **absolute day
    index** — ``"replay"`` ticks advance the day counter but never fire
    faults, keeping indices aligned after a restart.
    """
    send_lock = threading.Lock()
    hb_stop = threading.Event()
    hb_pause = threading.Event()

    def _heartbeat() -> None:
        while not hb_stop.wait(heartbeat_interval_s):
            if hb_pause.is_set():
                continue
            try:
                with send_lock:
                    conn.send(("ping",))
            except (BrokenPipeError, OSError):
                return

    hb_thread = None
    if heartbeat_interval_s > 0:
        hb_thread = threading.Thread(
            target=_heartbeat, name="repro-heartbeat", daemon=True
        )
        hb_thread.start()

    def _send(message) -> None:
        with send_lock:
            conn.send(message)

    def _flight(op: str, stage: str, **extra) -> None:
        """Ship one flight-recorder entry; best-effort by design.

        Sent *immediately* (not buffered worker-side) so the receipt
        entry for a day that SIGKILLs the worker mid-generation is
        already in the coordinator's ring when the crash is detected.
        """
        entry = {
            "op": op,
            "stage": stage,
            "pid": os.getpid(),
            "wall_s": round(time.perf_counter(), 6),  # repro: allow(wallclock) -- flight-recorder forensics; never reaches artefacts
        }
        entry.update(extra)
        try:
            _send(("flight", entry))
        except (BrokenPipeError, OSError):  # pragma: no cover - dying pipe
            pass

    faults_by_day = {}
    for fault in faults:
        faults_by_day.setdefault(fault.day_index, fault)

    def _maybe_fault(day_index: int) -> None:
        fault = faults_by_day.get(day_index)
        if fault is None:
            return
        if fault.kind == WORKER_FAULT_KILL:
            # Die without any cleanup, exactly like an OOM kill.
            try:
                os.kill(os.getpid(), signal.SIGKILL)
            except (OSError, AttributeError):  # pragma: no cover - non-POSIX
                os._exit(70)
        elif fault.kind == WORKER_FAULT_HANG:
            # Stop heartbeating *and* stop answering: a true wedge, not
            # a crash — the pipe stays open and the process stays alive.
            hb_pause.set()
            while True:
                time.sleep(60)  # wedge until the supervisor reaps us
        elif fault.kind == WORKER_FAULT_SLOW:
            # Delay the reply but keep heartbeating: the supervisor must
            # classify this as slow-not-hung and do nothing.
            time.sleep(fault.slow_s)

    try:
        # Imports happen here, in the child, after spawn.
        from repro.obs.telemetry import Telemetry
        from repro.simulation.engine import SimProcess
        from repro.simulation.world import World

        world = World(config, telemetry=Telemetry.disabled())
        sim = SimProcess(world, owned_shards)
        days_seen = 0
        while True:
            message = conn.recv()  # repro: allow(unbounded-recv) -- worker side: coordinator death closes the pipe and raises EOFError
            op = message[0]
            if op == "day":
                _, day_us, update = message
                # Receipt goes out before the fault gate: a SIGKILL that
                # fires on this day still leaves the "what was it doing"
                # record with the coordinator.
                _flight("day", "recv", day_us=day_us, day_index=days_seen)
                _maybe_fault(days_seen)
                days_seen += 1
                batches, gen_wall_us = _run_replica_day(sim, day_us, update)
                for batch in batches:
                    batch.gen_wall_us = gen_wall_us / max(1, len(batches))
                _flight(
                    "day",
                    "done",
                    day_us=day_us,
                    day_index=days_seen - 1,
                    gen_wall_us=round(gen_wall_us, 3),
                )
                _send(("batches", batches))
            elif op == "replay":
                _, day_us, update = message
                days_seen += 1
                _run_replica_day(sim, day_us, update)
                _send(("replayed", day_us))
            elif op == "repos":
                _, dids = message
                _flight("repos", "recv", dids=len(dids))
                _send(("repos", {did: sim.export_repo_car(did) for did in dids}))
            elif op == "stop":
                break
            else:
                raise RuntimeError("unknown worker op %r" % (op,))
    except EOFError:  # coordinator went away; exit quietly
        pass
    except BaseException:
        try:
            _send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        hb_stop.set()
        if hb_thread is not None:
            hb_thread.join(timeout=1.0)
        conn.close()


# ---------------------------------------------------------------------------
# In-process fallback replica
# ---------------------------------------------------------------------------


class _InlineReplica:
    """A worker replica run inside the coordinator process.

    Installed when a worker slot exhausts its restart budget: the study
    degrades gracefully (slower, but correct) instead of aborting.  The
    replica is built fresh from the config and fast-forwarded through
    the recorded day log — exactly what a respawned process would do,
    minus the process.
    """

    def __init__(self, config: SimulationConfig, owned_shards: tuple):
        from repro.obs.telemetry import Telemetry
        from repro.simulation.engine import SimProcess
        from repro.simulation.world import World

        self._world = World(config, telemetry=Telemetry.disabled())
        self._sim = SimProcess(self._world, owned_shards)

    def replay_day(self, day_us: int, update) -> None:
        _run_replica_day(self._sim, day_us, update)

    def run_day(self, day_us: int, update) -> list:
        batches, gen_wall_us = _run_replica_day(self._sim, day_us, update)
        for batch in batches:
            batch.gen_wall_us = gen_wall_us / max(1, len(batches))
        return batches

    def export_repo_car(self, did: str):
        return self._sim.export_repo_car(did)


# ---------------------------------------------------------------------------
# Supervisor / pool
# ---------------------------------------------------------------------------


@dataclass
class _Handle:
    """Mutable supervision state for one worker slot."""

    index: int
    owned: tuple
    faults: tuple = ()
    proc: object = None
    conn: object = None
    restarts: int = 0
    #: True while the slot owes batches for the last ``send_day``.
    outstanding: bool = False
    #: A ``send`` to this slot failed; recover lazily at collect time.
    send_failed: bool = False
    #: The current incarnation has sent at least one message; until it
    #: does, the (longer) spawn grace deadline applies instead of the
    #: heartbeat deadline.
    seen_beat: bool = False
    inline: Optional[_InlineReplica] = None
    incarnation: int = 0
    #: Ring buffer (deque) of the slot's latest flight-recorder entries,
    #: shipped over the supervision channel; survives respawns so a dump
    #: shows the whole incarnation chain's last moments.
    flight: object = None


class WorkerPool:
    """The coordinator's supervised handle on the spawned shard workers.

    Shard ``s`` is owned by worker slot ``s % workers``, so every slot
    holds a contiguous-stride set of shards and the mapping is a pure
    function of the configuration.  The pool is a context manager;
    ``shutdown()`` runs on every exit path and escalates
    terminate → kill so no worker process can be leaked.
    """

    def __init__(
        self,
        config: SimulationConfig,
        workers: int,
        fault_plan: Optional[WorkerFaultPlan] = None,
        supervision: Optional[SupervisionPolicy] = None,
        telemetry=None,
    ):
        n_shards = config.sim_shards
        self.config = config
        self.workers = max(1, min(workers, n_shards))
        self.policy = supervision or SupervisionPolicy()
        self.fault_plan = fault_plan or WorkerFaultPlan()
        self._ctx = multiprocessing.get_context("spawn")
        self._telemetry = telemetry
        if telemetry is not None:
            registry = telemetry.registry
            self._tracer = telemetry.tracer
        else:
            from repro.obs.metrics import NullRegistry
            from repro.obs.trace import NullTracer

            registry = NullRegistry()
            self._tracer = NullTracer()
        # Supervision metrics are volatile by contract: deterministic
        # given the fault-plan seed, but kept out of metrics.json so a
        # faulted run's artefacts stay byte-identical to a fault-free
        # run's (study_fingerprint folds metrics.json in).
        self._m_restarts = registry.counter(
            "sim_worker_restarts_total", label_names=("shard",), volatile=True
        )
        self._m_hangs = registry.counter(
            "sim_worker_hangs_detected_total", volatile=True
        )
        self._m_fallbacks = registry.counter(
            "sim_worker_fallbacks_total", label_names=("shard",), volatile=True
        )
        # The replay log: every (day_us, update) shipped since run start.
        # A respawned worker is fast-forwarded through this before it
        # rejoins the lockstep; an exhausted slot's inline replica is
        # fast-forwarded the same way.
        self._day_log: list = []
        # did -> worker slot, for routing repo-reader fetches.
        self._repo_home: dict[str, int] = {}
        self._handles: list[_Handle] = []
        try:
            from collections import deque

            for w in range(self.workers):
                owned = tuple(s for s in range(n_shards) if s % self.workers == w)
                handle = _Handle(
                    index=w,
                    owned=owned,
                    faults=self.fault_plan.schedule_for(w),
                    flight=deque(maxlen=max(1, self.policy.flight_capacity)),
                )
                self._spawn(handle)
                self._handles.append(handle)
        except BaseException:
            # A partially started pool must not leak the survivors.
            self.shutdown()
            raise

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def _spawn(self, handle: _Handle) -> None:
        """(Re)start a worker process for the slot."""
        hb_interval = (
            self.policy.heartbeat_interval_s if self.policy.heartbeats else 0.0
        )
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.config, handle.owned, handle.faults, hb_interval),
            daemon=True,
            name="repro-shard-w%d.%d" % (handle.index, handle.incarnation),
        )
        proc.start()
        child_conn.close()
        handle.conn = parent_conn
        handle.proc = proc
        handle.seen_beat = False
        handle.incarnation += 1

    def _reap(self, handle: _Handle) -> None:
        """Take the slot's process down for sure and close its pipe."""
        proc, conn = handle.proc, handle.conn
        handle.proc = handle.conn = None
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        if proc is None:
            return
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5)
        if proc.is_alive():  # pragma: no cover - terminate ignored
            proc.kill()
        proc.join(timeout=5)

    def shutdown(self) -> None:
        """Stop every worker; never leaks a process, even when stuck.

        Escalation ladder per slot: cooperative ``("stop",)`` →
        ``join(10)`` → ``terminate()`` + ``join(5)`` → ``kill()`` +
        final join.  Pipe connections are closed in a ``finally`` so a
        raising send cannot leak descriptors.
        """
        try:
            for handle in self._handles:
                if handle.conn is None:
                    continue
                try:
                    handle.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
            for handle in self._handles:
                proc = handle.proc
                if proc is None:
                    continue
                proc.join(timeout=10)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5)
                if proc.is_alive():  # pragma: no cover - stuck worker
                    proc.kill()
                proc.join(timeout=5)
        finally:
            for handle in self._handles:
                conn, handle.conn = handle.conn, None
                handle.proc = None
                if conn is not None:
                    try:
                        conn.close()
                    except OSError:  # pragma: no cover
                        pass

    def live_workers(self) -> int:
        """Worker processes currently alive (observability/tests)."""
        return sum(
            1
            for handle in self._handles
            if handle.proc is not None and handle.proc.is_alive()
        )

    def flight_records(self) -> dict:
        """slot index → retained flight entries (observability/tests)."""
        return {
            handle.index: list(handle.flight or ()) for handle in self._handles
        }

    # -- supervised receive --------------------------------------------------

    def _recv(self, handle: _Handle):
        """One protocol reply from the slot, under liveness supervision.

        Raises :class:`WorkerCrashed` for a dead process/pipe,
        :class:`WorkerHung` for a live-but-silent worker (missed
        heartbeat deadline or blown per-day budget), and plain
        :class:`WorkerError` for an application error shipped back by
        the worker (fatal: deterministic, a restart would loop).
        """
        conn, proc = handle.conn, handle.proc
        policy = self.policy
        if not policy.heartbeats:
            # Legacy unbounded path, kept for bench baselines: a hang
            # here blocks forever by design.  Out-of-band frames (pings
            # from a policy mismatch, flight entries) are still absorbed.
            while True:
                try:
                    reply = conn.recv()  # repro: allow(unbounded-recv) -- legacy heartbeat-free mode, selected explicitly via SupervisionPolicy(heartbeats=False)
                except (EOFError, OSError):
                    raise WorkerCrashed(
                        "shard worker %d exited unexpectedly (exitcode=%s)"
                        % (handle.index, proc.exitcode if proc is not None else None)
                    )
                if reply[0] == "ping":
                    continue
                if reply[0] == "flight":
                    handle.flight.append(reply[1])
                    continue
                if reply[0] == "error":
                    raise WorkerError(
                        "shard worker %d failed:\n%s" % (handle.index, reply[1])
                    )
                return reply
        deadline = _now_s() + policy.day_deadline_s
        last_beat = _now_s()
        while True:
            try:
                ready = conn.poll(policy.poll_interval_s)
            except (OSError, ValueError):
                raise WorkerCrashed(
                    "shard worker %d pipe broke (exitcode=%s)"
                    % (handle.index, proc.exitcode if proc is not None else None)
                )
            if ready:
                try:
                    reply = conn.recv()
                except (EOFError, OSError):
                    raise WorkerCrashed(
                        "shard worker %d exited unexpectedly (exitcode=%s)"
                        % (handle.index, proc.exitcode if proc is not None else None)
                    )
                handle.seen_beat = True
                if reply[0] == "ping":
                    last_beat = _now_s()
                    continue
                if reply[0] == "flight":
                    # A flight entry proves liveness as well as a ping.
                    handle.flight.append(reply[1])
                    last_beat = _now_s()
                    continue
                if reply[0] == "error":
                    raise WorkerError(
                        "shard worker %d failed:\n%s" % (handle.index, reply[1])
                    )
                return reply
            now = _now_s()
            if not proc.is_alive():
                # Drain race: the reply may have been written right
                # before death; one zero-timeout poll settles it.
                if conn.poll(0):
                    continue
                raise WorkerCrashed(
                    "shard worker %d died mid-request (exitcode=%s)"
                    % (handle.index, proc.exitcode)
                )
            beat_limit = policy.heartbeat_timeout_s
            if not handle.seen_beat:
                # Still bootstrapping (spawn + imports): silence is
                # expected, so apply the startup grace instead.
                beat_limit = max(beat_limit, policy.spawn_grace_s)
            if now - last_beat > beat_limit:
                raise WorkerHung(
                    "shard worker %d missed its heartbeat deadline "
                    "(%.2fs silent, limit %.2fs; process alive)"
                    % (handle.index, now - last_beat, beat_limit)
                )
            if now > deadline:
                raise WorkerHung(
                    "shard worker %d blew its per-day budget (%.1fs; process alive)"
                    % (handle.index, policy.day_deadline_s)
                )

    # -- recovery ------------------------------------------------------------

    def _recover(self, handle: _Handle, failure: WorkerError) -> None:
        """Bring the slot back to a healthy state after ``failure``.

        Loops restart attempts (a respawn can itself fail) until the
        slot is healthy, the restart budget is exhausted (→ inline
        fallback or raise), or a fatal error surfaces.  On return the
        slot either has a live fast-forwarded process with the
        in-flight day re-sent, or an inline replica ready to serve it.
        """
        policy = self.policy
        tracer = self._tracer
        self._drain_flight(handle)
        self._dump_flight(handle, failure)
        while True:
            handle.send_failed = False
            self._reap(handle)
            if isinstance(failure, WorkerHung):
                self._m_hangs.inc()
                tracer.instant(
                    "supervisor.hang_detected",
                    "supervisor",
                    args={"worker": handle.index},
                    sample=False,
                )
                self._emit_event(
                    "supervisor.hang", {"worker": handle.index, "detail": str(failure)}
                )
            if handle.restarts >= policy.max_restarts_per_worker:
                if not policy.fallback_in_process:
                    raise WorkerError(
                        "shard worker %d exhausted its restart budget (%d): %s"
                        % (handle.index, policy.max_restarts_per_worker, failure)
                    ) from failure
                self._install_fallback(handle)
                return
            handle.restarts += 1
            for shard in handle.owned:
                self._m_restarts.inc(("s%02d" % shard,))
            time.sleep(policy.backoff_s(handle.restarts))  # wall-only backoff; artefacts unaffected
            wall0 = tracer.wall_us()
            try:
                self._respawn_and_replay(handle)
            except (WorkerCrashed, WorkerHung) as refailure:
                failure = refailure
                continue
            tracer.complete(
                "supervisor.restart w%d" % handle.index,
                "supervisor",
                wall0,
                args={
                    "worker": handle.index,
                    "attempt": handle.restarts,
                    "replayed_days": len(self._day_log)
                    - (1 if handle.outstanding else 0),
                    "hung": isinstance(failure, WorkerHung),
                },
            )
            self._emit_event(
                "supervisor.restart",
                {"worker": handle.index, "attempt": handle.restarts},
            )
            return

    def _emit_event(self, kind: str, fields: dict) -> None:
        """A volatile supervision event (fault-timing-dependent by nature)."""
        if self._telemetry is not None:
            self._telemetry.emit_event(kind, fields=fields, volatile=True)

    def _drain_flight(self, handle: _Handle) -> None:
        """Absorb any flight/ping frames still queued in a dying pipe.

        Called before the reap closes the pipe: the final receipt entry
        of a killed worker is usually sitting here, and it is exactly
        the record the dump exists for.
        """
        conn = handle.conn
        if conn is None:
            return
        while True:
            try:
                if not conn.poll(0):
                    return
                reply = conn.recv()
            except (EOFError, OSError, ValueError):
                return
            if reply[0] == "flight":
                handle.flight.append(reply[1])
            # Anything else (pings, a half-shipped reply) is discarded:
            # the slot is being recovered, its request will be re-sent.

    def _dump_flight(self, handle: _Handle, failure: WorkerError) -> None:
        """Write ``flight-w<idx>.json`` for a crashed/hung slot.

        The dump is forensic and volatile: it lands next to the study's
        checkpoints/artefacts but is never folded into fingerprints, so
        a faulted run's artefacts stay byte-identical to a fault-free
        run's.
        """
        self._emit_event(
            "flight.dump",
            {
                "worker": handle.index,
                "entries": len(handle.flight),
                "failure": type(failure).__name__,
            },
        )
        directory = self.policy.flight_dir
        if not directory:
            return
        from repro.core.atomicio import atomic_write_json

        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, "flight-w%02d.json" % handle.index)
        atomic_write_json(
            path,
            {
                "schema": "repro-flight-v1",
                "worker": handle.index,
                "incarnation": handle.incarnation,
                "restarts": handle.restarts,
                "owned_shards": list(handle.owned),
                "failure": {
                    "type": type(failure).__name__,
                    "detail": str(failure),
                },
                "day_log_length": len(self._day_log),
                "entries": list(handle.flight),
            },
        )

    def _remaining_faults(self, handle: _Handle) -> tuple:
        """The slot's faults that have not yet fired.

        The in-flight day (``day_log[-1]`` when outstanding) is where
        the failure happened, so its fault — and everything before it —
        is consumed; only strictly later days may still fault.
        """
        horizon = len(self._day_log) - 1
        return tuple(f for f in handle.faults if f.day_index > horizon)

    def _respawn_and_replay(self, handle: _Handle) -> None:
        """Fresh process, fast-forwarded; re-sends the in-flight day."""
        handle.faults = self._remaining_faults(handle)
        self._spawn(handle)
        replay = self._day_log[:-1] if handle.outstanding else self._day_log
        try:
            for day_us, update in replay:
                handle.conn.send(("replay", day_us, update))
                reply = self._recv(handle)
                if reply[0] != "replayed":  # pragma: no cover - protocol bug
                    raise WorkerError(
                        "shard worker %d sent %r during replay"
                        % (handle.index, reply[0])
                    )
            if handle.outstanding:
                day_us, update = self._day_log[-1]
                handle.conn.send(("day", day_us, update))
        except (BrokenPipeError, OSError):
            raise WorkerCrashed(
                "shard worker %d died during replay fast-forward" % handle.index
            )

    def _install_fallback(self, handle: _Handle) -> None:
        """Fold the slot's shards into the coordinator process."""
        tracer = self._tracer
        wall0 = tracer.wall_us()
        replica = _InlineReplica(self.config, handle.owned)
        replay = self._day_log[:-1] if handle.outstanding else self._day_log
        for day_us, update in replay:
            replica.replay_day(day_us, update)
        handle.inline = replica
        for shard in handle.owned:
            self._m_fallbacks.inc(("s%02d" % shard,))
        self._emit_event(
            "supervisor.fallback",
            {"worker": handle.index, "shards": list(handle.owned)},
        )
        tracer.complete(
            "supervisor.fallback w%d" % handle.index,
            "supervisor",
            wall0,
            args={
                "worker": handle.index,
                "shards": list(handle.owned),
                "replayed_days": len(replay),
            },
        )

    # -- protocol ------------------------------------------------------------

    def send_day(self, day_us: int, update: list) -> None:
        """Ship the day tick; failures are recovered at collect time."""
        self._day_log.append((day_us, update))
        for handle in self._handles:
            handle.outstanding = True
            if handle.inline is not None:
                continue
            try:
                handle.conn.send(("day", day_us, update))
            except (BrokenPipeError, OSError):
                handle.send_failed = True

    def collect_batches(self) -> list:
        """Collect every slot's day batches, ordered by shard id."""
        batches = []
        for handle in self._handles:
            batches.extend(self._collect_from(handle))
        batches.sort(key=lambda batch: batch.shard_id)
        return batches

    def _collect_from(self, handle: _Handle) -> list:
        while True:
            if handle.inline is not None:
                day_us, update = self._day_log[-1]
                result = handle.inline.run_day(day_us, update)
                handle.outstanding = False
                return result
            try:
                if handle.send_failed:
                    raise WorkerCrashed(
                        "shard worker %d pipe was closed at day send" % handle.index
                    )
                reply = self._recv(handle)
                handle.outstanding = False
                return reply[1]
            except (WorkerCrashed, WorkerHung) as failure:
                self._recover(handle, failure)

    # -- repo reading --------------------------------------------------------

    def fetch_repo_cars(self, dids) -> dict:
        """CAR bytes for the given DIDs, routed to the owning slots."""
        by_worker: dict[int, list] = {}
        result: dict = {}
        for did in dids:
            worker = self._repo_home.get(did)
            if worker is None:
                result[did] = None
            else:
                by_worker.setdefault(worker, []).append(did)
        for worker in sorted(by_worker):
            result.update(self._fetch_from(self._handles[worker], by_worker[worker]))
        return result

    def _fetch_from(self, handle: _Handle, dids: list) -> dict:
        while True:
            if handle.inline is not None:
                return {did: handle.inline.export_repo_car(did) for did in dids}
            try:
                handle.conn.send(("repos", dids))
                reply = self._recv(handle)
                return reply[1]
            except (BrokenPipeError, OSError):
                self._recover(
                    handle,
                    WorkerCrashed(
                        "shard worker %d pipe was closed at repo fetch" % handle.index
                    ),
                )
            except (WorkerCrashed, WorkerHung) as failure:
                self._recover(handle, failure)

    def note_repo_home(self, did: str, shard_id: int) -> None:
        """Record which slot owns a repo (called once per first commit)."""
        self._repo_home[did] = shard_id % self.workers

    def repo_reader(self):
        """The callable installed as ``relay.repo_reader``: did -> CAR."""

        def read(did: str) -> Optional[bytes]:
            return self.fetch_repo_cars([did]).get(did)

        return read

    def close_reader(self):
        """The reader to leave installed after shutdown (nothing)."""
        return None

"""The feed-generator ecosystem, calibrated to Section 7.

Generates feed specs — creator, hosting platform, rule, retention,
description language, like-attractiveness — so that the downstream
analysis reproduces the paper's shapes:

* platform shares: Skyfeed 85.86% of feeds, top-3 platforms 95.8%;
* Goodfeeds hosts few feeds but whole-network aggregators (35.6% of
  posts, 1.2% of likes); Skyfeed's topical feeds draw 61.2% of likes;
* 9.4% of feeds never curate a post; 21.8% go inactive;
* personalized feeds (0.09%) return nothing to anonymous crawlers but are
  among the most liked;
* 62.1% of creators manage one feed; one service account manages the
  platform-wide maximum;
* description languages: en 45%, ja 36%, de 4.1%, ko 2.0%, fr 1.9%.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.simulation import vocab
from repro.simulation.clock import US_PER_DAY, date_us
from repro.simulation.config import (
    FEEDGEN_INTRO_US,
    LANGUAGES,
    PUBLIC_OPENING_US,
    SimulationConfig,
)
from repro.simulation.population import UserSpec

PLATFORM_SKYFEED = "Skyfeed"
PLATFORM_BLUEFEED = "Bluefeed"
PLATFORM_BLUESKYFEEDS = "Blueskyfeeds"
PLATFORM_GOODFEEDS = "Goodfeeds"
PLATFORM_BSFC = "Blueskyfeedcreator"
SELF_HOSTED = "self-hosted"

# Platform mix calibrated to the Section 7.2 shares (Skyfeed 85.86%,
# Goodfeeds 4.36%, top-3 platforms 95.8%), normalised to the paper's
# 43,063 discovered feeds; Table 5's raw per-builder counts differ
# slightly because they were taken at a different time.
PLATFORM_WEIGHTS = (
    (PLATFORM_SKYFEED, 36_978),
    (PLATFORM_BLUEFEED, 2_403),
    (PLATFORM_GOODFEEDS, 1_878),
    (PLATFORM_BLUESKYFEEDS, 1_100),
    (PLATFORM_BSFC, 158),
    (SELF_HOSTED, 546),
)

KIND_TOPIC = "topic"  # keyword feed (the Skyfeed staple)
KIND_LANGUAGE = "language"  # e.g. hebrew-feed: reposts everything in a language
KIND_AGGREGATOR = "aggregator"  # whole-network firehose mirror
KIND_AUTHOR = "author"  # posts of a single account / small group
KIND_PERSONALIZED = "personalized"  # the-algorithm / whats-hot
KIND_DEAD = "dead"  # never matches anything (9.4% never curated)


@dataclass
class FeedSpec:
    """One feed generator's static configuration."""

    index: int
    rkey: str
    creator_index: int  # into the user population
    platform: str
    kind: str
    created_us: int
    display_name: str
    description: str
    description_lang: str
    topic: Optional[str] = None
    languages: tuple[str, ...] = ()
    regex: Optional[str] = None
    retention_days: Optional[float] = None
    retention_count: Optional[int] = None
    like_weight: float = 1.0  # relative probability of attracting likes
    inactive_after_us: Optional[int] = None
    nsfw: bool = False
    # Announced in the repo but never actually deployed on any host: the
    # ~6% of discovered feeds the paper could not fetch metadata for.
    unhosted: bool = False


def _sample_created_us(rng: random.Random, end_us: int) -> int:
    """Feed creation dates: steady growth since May 2023, Feb 2024 bump."""
    while True:
        span = end_us - FEEDGEN_INTRO_US
        t = FEEDGEN_INTRO_US + int(rng.random() * span)
        weight = 2.2 if t >= PUBLIC_OPENING_US else 1.0
        if rng.random() * 2.2 <= weight:
            return t


def _description_language(rng: random.Random) -> str:
    return vocab.pick_weighted(rng, [(tag, share) for tag, _, share in LANGUAGES])


def build_feed_specs(
    config: SimulationConfig, users: list[UserSpec], rng: random.Random
) -> list[FeedSpec]:
    n_feeds = config.n_feed_generators
    specs: list[FeedSpec] = []

    # Creators: weighted by attractiveness (popular users create feeds),
    # matching Figure 11's red-shaded high-in-degree / low-out-degree zone.
    eligible = [u for u in users if not u.will_tombstone]
    weights = [u.attractiveness for u in eligible]

    # The feed-service power account (max feeds per account) is a service
    # operator, not a celebrity: drawn uniformly.
    service_account = eligible[rng.randrange(len(eligible))]
    service_account_feeds = max(3, int(1_799 * config.feed_scale * 4))

    creators: list[UserSpec] = []
    remaining = n_feeds - service_account_feeds
    seen_managers: set = set()
    while remaining > 0:
        creator = rng.choices(eligible, weights=weights, k=1)[0]
        # Prefer fresh managers so the per-account distribution matches
        # Section 7.1 (62.1% of managers hold exactly one feed).  On
        # repeated collisions fall back to a uniform draw — otherwise the
        # most popular accounts would silently accumulate many feeds and
        # induce the count-vs-followers correlation the paper rules out.
        retries = 0
        while creator.index in seen_managers and retries < 6:
            creator = rng.choices(eligible, weights=weights, k=1)[0]
            retries += 1
        if creator.index in seen_managers:
            for _ in range(20):
                candidate = eligible[rng.randrange(len(eligible))]
                if candidate.index not in seen_managers:
                    creator = candidate
                    break
        seen_managers.add(creator.index)
        # How many feeds a manager runs is independent of their
        # popularity — the paper finds r=0.005 between feed count and
        # followers — so multi-feed managers are re-drawn uniformly.
        count = 1 if rng.random() < 0.70 else rng.randint(2, 6)
        if count > 1:
            creator = eligible[rng.randrange(len(eligible))]
        count = min(count, remaining)
        creators.extend([creator] * count)
        remaining -= count
    creators.extend([service_account] * service_account_feeds)

    end_us = config.end_us
    for index, creator in enumerate(creators[:n_feeds]):
        platform = vocab.pick_weighted(rng, PLATFORM_WEIGHTS)
        created_us = _sample_created_us(rng, end_us)
        # A feed cannot predate its creator's account.
        created_us = max(created_us, creator.signup_us + US_PER_DAY)
        if created_us >= end_us:
            created_us = (creator.signup_us + end_us) // 2
        lang = _description_language(rng)
        kind, spec_kwargs = _pick_kind(rng, platform, creator)
        topic = spec_kwargs.pop("topic", None)
        display = topic or kind
        description = vocab.make_feed_description(rng, lang, display)
        spec = FeedSpec(
            index=index,
            rkey="feed-%05d" % index,
            creator_index=creator.index,
            platform=platform,
            kind=kind,
            created_us=created_us,
            display_name="%s-%d" % (display, index),
            description=description,
            description_lang=lang,
            topic=topic,
            **spec_kwargs,
        )
        _assign_retention(rng, spec, platform)
        _assign_like_weight(rng, spec)
        if rng.random() < 0.062:
            spec.unhosted = True
        if rng.random() < 0.218 and spec.kind not in (KIND_DEAD, KIND_PERSONALIZED):
            # Goes inactive during the final months of the window.  An
            # abandoned feed keeps serving its frozen backlog, so switch it
            # to count retention — that is what lets the paper distinguish
            # "inactive in the last month" (21.8%) from "never curated"
            # (9.4%).
            spec.inactive_after_us = end_us - int(rng.uniform(30, 120) * US_PER_DAY)
            spec.retention_days = None
            spec.retention_count = rng.choice((100, 250, 500, 1000))
        specs.append(spec)
    _apply_ecosystem_floors(rng, specs)
    return specs


def _apply_ecosystem_floors(rng: random.Random, specs: list[FeedSpec]) -> None:
    """Guarantee the structurally important feed kinds exist at any scale.

    Personalized feeds (0.09% of feeds) and Goodfeeds aggregators drive
    Figures 10 and 12; probabilistic assignment can miss them entirely in
    small worlds, so a couple of each are pinned.
    """
    personalized = [s for s in specs if s.kind == KIND_PERSONALIZED]
    if len(personalized) < 2:
        candidates = [s for s in specs if s.kind == KIND_TOPIC and not s.unhosted]
        for spec in candidates[: 2 - len(personalized)]:
            spec.platform = SELF_HOSTED
            spec.kind = KIND_PERSONALIZED
            spec.topic = None
            spec.regex = None
            spec.languages = ()
            spec.like_weight = 120.0 * rng.paretovariate(1.1)
            spec.inactive_after_us = None
    goodfeeds_aggregators = [
        s
        for s in specs
        if s.platform == PLATFORM_GOODFEEDS
        and s.kind == KIND_AGGREGATOR
        and not s.unhosted
        and s.inactive_after_us is None
    ]
    if len(goodfeeds_aggregators) < 2:
        candidates = [
            s for s in specs if s.kind in (KIND_TOPIC, KIND_AUTHOR) and not s.unhosted
        ]
        for spec in candidates[-(2 - len(goodfeeds_aggregators)) :]:
            spec.platform = PLATFORM_GOODFEEDS
            spec.kind = KIND_AGGREGATOR
            spec.topic = None
            spec.regex = None
            spec.languages = ()
            spec.retention_days = rng.uniform(10.0, 30.0)
            spec.retention_count = None
            spec.inactive_after_us = None
            spec.like_weight *= 0.03


def _pick_kind(rng: random.Random, platform: str, creator: UserSpec) -> tuple[str, dict]:
    """Choose a feed kind expressible on the given platform (Table 5)."""
    roll = rng.random()
    if roll < 0.094:
        # Dead feeds (never curate anything): built as single-user feeds of
        # an account that never posts, which every platform can express.
        return KIND_DEAD, {}
    if platform == SELF_HOSTED and rng.random() < 0.016:
        # Personalized feeds are 0.09% of all feeds and only self-hosted
        # (platforms do not automate personalization — Section 7.2).
        return KIND_PERSONALIZED, {}
    if platform == PLATFORM_GOODFEEDS:
        # Goodfeeds has no tag/language features: whole-network mirrors and
        # single-user feeds only — which is why it hosts 4.36% of feeds but
        # produces 35.6% of observed posts.
        if rng.random() < 0.75:
            return KIND_AGGREGATOR, {}
        return KIND_AUTHOR, {}
    supports_language = platform in (PLATFORM_SKYFEED, PLATFORM_BSFC, PLATFORM_BLUESKYFEEDS, SELF_HOSTED)
    if roll < 0.20 and supports_language:
        lang = vocab.pick_weighted(rng, [(t, s) for t, s, _ in LANGUAGES])
        return KIND_LANGUAGE, {"languages": (lang,)}
    if roll < 0.25:
        return KIND_AUTHOR, {}
    if platform == PLATFORM_BLUEFEED and rng.random() < 0.25:
        return KIND_AGGREGATOR, {}
    # Topical keyword feed (the dominant kind).
    topic = vocab.pick_weighted(rng, vocab.TOPICS)
    kwargs: dict = {"topic": topic, "nsfw": topic in ("nsfw", "furry") and rng.random() < 0.7}
    if platform == PLATFORM_SKYFEED and rng.random() < 0.25:
        kwargs["regex"] = r"\b%s\b" % topic
    return KIND_TOPIC, kwargs


def _assign_retention(rng: random.Random, spec: FeedSpec, platform: str) -> None:
    """Retention policy (Section 7.1: most feeds keep 1–7 days or last-N).

    Skyfeed serves a sliding window of at most a week; whole-network
    mirrors (Goodfeeds' staple) retain weeks of history.  That asymmetry
    is how a platform hosting 4.36% of feeds ends up serving 35.6% of
    observed posts while Skyfeed's 85.9% of feeds serve only 30.3%.
    """
    if platform == PLATFORM_GOODFEEDS or spec.kind == KIND_AGGREGATOR:
        spec.retention_days = rng.uniform(10.0, 30.0)
        return
    if platform == PLATFORM_SKYFEED:
        spec.retention_days = rng.uniform(1.0, 7.0)
        return
    roll = rng.random()
    if roll < 0.60:
        spec.retention_days = rng.uniform(1.0, 7.0)
    elif roll < 0.90:
        spec.retention_count = rng.choice((100, 250, 500, 1000))
    # else: full history


def _assign_like_weight(rng: random.Random, spec: FeedSpec) -> None:
    """Like-attractiveness shapes: Skyfeed topical feeds and personalized
    feeds draw likes; aggregators draw almost none (Figure 10 / 12)."""
    base = rng.paretovariate(1.1)
    if spec.kind == KIND_PERSONALIZED:
        base *= 120.0
    elif spec.kind == KIND_AGGREGATOR:
        base *= 0.03
    elif spec.kind == KIND_DEAD:
        base *= 0.05
    elif spec.kind == KIND_TOPIC:
        base *= 2.2
        if spec.topic in ("art", "artists", "furry"):
            base *= 2.0
    if spec.platform == PLATFORM_GOODFEEDS:
        base *= 0.25
    spec.like_weight = base

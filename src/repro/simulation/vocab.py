"""Synthetic content vocabularies.

Post text is generated from per-language word pools so that (a) keyword
feeds have something to match, (b) the lexicon-based language identifier
in the analysis package can recover the language from text, and (c) the
feed-description word cloud (Figure 8) surfaces the same themes the paper
reports ("art", "artists", "posts", "feed", "nsfw", platform links).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Sequence

# Per-language core vocabulary (romanised where needed so handles and
# tokenization stay ASCII-friendly).
LANGUAGE_WORDS: dict[str, tuple[str, ...]] = {
    "en": (
        "the", "and", "today", "love", "great", "morning", "coffee", "work",
        "music", "game", "news", "weather", "happy", "friends", "weekend",
        "reading", "writing", "photo", "beautiful", "thanks", "life", "time",
        "people", "world", "thinking", "making", "really", "good", "new",
    ),
    "ja": (
        "kyou", "watashi", "arigatou", "ohayou", "genki", "sugoi", "kawaii",
        "tanoshii", "ramen", "neko", "inu", "sakura", "tokyo", "manga",
        "anime", "gohan", "oyasumi", "daisuki", "ganbatte", "minna",
        "tenki", "shigoto", "yoru", "asa", "natsu", "fuyu",
    ),
    "pt": (
        "hoje", "obrigado", "bom", "dia", "amigos", "trabalho", "musica",
        "futebol", "praia", "cafe", "noite", "feliz", "vida", "tempo",
        "gente", "mundo", "fazendo", "muito", "novo", "brasil",
    ),
    "de": (
        "heute", "danke", "guten", "morgen", "arbeit", "musik", "wetter",
        "freunde", "wochenende", "lesen", "schreiben", "foto", "schoen",
        "leben", "zeit", "leute", "welt", "denken", "machen", "wirklich",
    ),
    "ko": (
        "oneul", "gamsa", "annyeong", "chingu", "ilhada", "eumak", "nalssi",
        "jumal", "sajin", "areumdaun", "insaeng", "sigan", "saram", "sesang",
        "saenggak", "mandeulda", "jeongmal", "joayo", "saeroun", "hanguk",
    ),
    "fr": (
        "aujourdhui", "merci", "bonjour", "amis", "travail", "musique",
        "meteo", "weekend", "lire", "ecrire", "photo", "belle", "vie",
        "temps", "gens", "monde", "penser", "faire", "vraiment", "nouveau",
    ),
}

# Topic keywords that topical feeds select on; weighted toward the themes
# the paper observed (art dominates, plus niche communities).
TOPICS: tuple[tuple[str, float], ...] = (
    ("art", 0.22),
    ("artists", 0.08),
    ("cats", 0.08),
    ("dogs", 0.05),
    ("ramen", 0.05),
    ("politics", 0.05),
    ("science", 0.05),
    ("gaming", 0.06),
    ("ff14", 0.04),
    ("music", 0.06),
    ("books", 0.04),
    ("sports", 0.05),
    ("furry", 0.04),
    ("nsfw", 0.04),
    ("tech", 0.05),
    ("food", 0.04),
)

# Words injected into feed-generator descriptions (Figure 8 word cloud).
FEED_DESCRIPTION_WORDS = (
    "feed", "posts", "art", "artists", "community", "new", "all",
    "content", "follow", "daily", "best", "latest", "nsfw", "sfw",
)

# External platforms linked from descriptions (Section 7.1 / Economics).
ARTIST_PLATFORM_LINKS = ("tumblr.com", "deviantart.com", "pixiv.net")
DONATION_LINKS = ("patreon.com", "ko-fi.com")

# Handle name fragments.
NAME_FRAGMENTS = (
    "sky", "blue", "star", "moon", "sun", "river", "cloud", "pixel",
    "nova", "echo", "wave", "leaf", "stone", "fox", "wolf", "bird",
    "sage", "iris", "ruby", "jade", "storm", "ember", "frost", "dawn",
)

# Custom-domain providers the paper names (Figure 3) with their observed
# subdomain counts; used to shape the non-bsky.social handle tail.
SUBDOMAIN_PROVIDERS = (
    ("swifties.social", 256),
    ("tired.io", 179),
    ("vibes.cool", 133),
    ("github.io", 35),
    ("skyname.social", 90),
    ("fans.dev", 60),
    ("crew.zone", 45),
    ("pals.online", 30),
)

# TLD pool for self-managed domains, roughly matching a real mix; ccTLDs
# are flagged because their WHOIS omits IANA IDs (Section 5).
SELF_MANAGED_TLDS = (
    ("com", 0.42, False),
    ("net", 0.07, False),
    ("org", 0.07, False),
    ("io", 0.06, False),
    ("dev", 0.05, False),
    ("social", 0.04, False),
    ("de", 0.06, True),
    ("jp", 0.07, True),
    ("br", 0.05, True),
    ("uk", 0.04, True),
    ("fr", 0.03, True),
    ("xyz", 0.04, False),
)


# Cumulative-weight tables for the module-level weight tables above,
# computed once per table.  Keyed by id(); the table itself is kept in the
# value so the id can never be recycled while the entry is alive.  Only
# tuples are cached — a list argument could be mutated between calls.
_CUM_CACHE: dict[int, tuple[Sequence[tuple], list[float]]] = {}


def _cumulative_weights(pairs: Sequence[tuple]) -> list[float]:
    cached = _CUM_CACHE.get(id(pairs))
    if cached is not None and cached[0] is pairs:
        return cached[1]
    cumulative = 0.0
    cum = []
    for pair in pairs:
        cumulative += pair[1]
        cum.append(cumulative)
    if isinstance(pairs, tuple):
        if len(_CUM_CACHE) > 256:
            _CUM_CACHE.clear()
        _CUM_CACHE[id(pairs)] = (pairs, cum)
    return cum


def pick_weighted(rng, pairs: Sequence[tuple]) -> object:
    """Pick the first element of a (value, weight, ...) pair sequence.

    Equivalent to a linear scan for the first ``point <= cumulative``
    prefix sum (bisect_left over the cached cumulative table draws the
    same single uniform and lands on the same element).
    """
    cum = _cumulative_weights(pairs)
    point = rng.random() * cum[-1]
    index = bisect_left(cum, point)
    if index >= len(pairs):
        return pairs[-1][0]
    return pairs[index][0]


def make_post_text(rng, lang: str, topic: str | None = None) -> str:
    """Generate a short post in the given language, optionally on-topic."""
    words = LANGUAGE_WORDS.get(lang, LANGUAGE_WORDS["en"])
    count = rng.randint(4, 14)
    chosen = [words[rng.randrange(len(words))] for _ in range(count)]
    if topic is not None:
        chosen.insert(rng.randrange(len(chosen) + 1), topic)
    return " ".join(chosen)


def make_feed_description(rng, lang: str, topic: str) -> str:
    """Generate a feed description mixing topic, theme words, and links."""
    words = list(LANGUAGE_WORDS.get(lang, LANGUAGE_WORDS["en"])[:8])
    pieces = [topic]
    pieces.extend(rng.sample(list(FEED_DESCRIPTION_WORDS), k=4))
    pieces.extend(rng.sample(words, k=min(3, len(words))))
    if topic in ("art", "artists") and rng.random() < 0.5:
        pieces.append(ARTIST_PLATFORM_LINKS[rng.randrange(len(ARTIST_PLATFORM_LINKS))])
    if rng.random() < 0.08:
        pieces.append(DONATION_LINKS[rng.randrange(len(DONATION_LINKS))])
    if topic == "nsfw":
        pieces.append("nsfw")
    return " ".join(pieces)


def make_username(rng, index: int) -> str:
    """A unique, handle-safe username."""
    a = NAME_FRAGMENTS[rng.randrange(len(NAME_FRAGMENTS))]
    b = NAME_FRAGMENTS[rng.randrange(len(NAME_FRAGMENTS))]
    return "%s%s%d" % (a, b, index)

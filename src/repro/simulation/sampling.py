"""Weighted samplers for the simulation hot loop.

``random.Random.choices`` rebuilds its cumulative-weight table on *every*
call — an O(n) scan that the engine used to pay once per like, once per
day-activity draw, and once per block at full population size.  The
samplers here keep that table warm:

* :class:`CumulativeSampler` — cached cumulative weights maintained
  incrementally as items are appended.  Sampling is a single uniform draw
  plus a binary search, and is **bit-compatible with**
  ``random.Random.choices(items, weights=w, k=...)``: the cumulative sums
  are built with the same left-to-right float additions and the same
  ``bisect_right`` convention, so swapping one in does not perturb a
  seeded RNG stream.
* :class:`AliasSampler` — Vose's alias method for static distributions:
  O(n) build, O(1) per draw (two uniforms, no search).  Use it for
  stream-insensitive workloads where the distribution is fixed up front;
  it consumes a different number of RNG draws than ``choices``.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from typing import Generic, Iterable, Optional, Sequence, TypeVar

T = TypeVar("T")


class SamplingError(ValueError):
    """Raised on invalid sampler construction or empty draws."""


class CumulativeSampler(Generic[T]):
    """Incrementally maintained weighted sampler.

    Appending is O(1); sampling is O(log n).  The item list is exposed as
    ``.items`` for callers that also need uniform access (it must not be
    mutated except through :meth:`append` / :meth:`extend`).
    """

    __slots__ = ("items", "_cum")

    def __init__(
        self,
        items: Iterable[T] = (),
        weights: Optional[Iterable[float]] = None,
    ):
        self.items: list[T] = list(items)
        if weights is None:
            cum: list[float] = []
            total = 0.0
            for _ in self.items:
                total += 1.0
                cum.append(total)
        else:
            cum = []
            total = 0.0
            for weight in weights:
                total += weight
                cum.append(total)
        if len(cum) != len(self.items):
            raise SamplingError("weights must match items")
        self._cum = cum

    def __len__(self) -> int:
        return len(self.items)

    def __bool__(self) -> bool:
        return bool(self.items)

    @property
    def total(self) -> float:
        return self._cum[-1] if self._cum else 0.0

    @property
    def cum_weights(self) -> list[float]:
        """The cumulative table (``random.choices(cum_weights=...)``-ready)."""
        return self._cum

    def append(self, item: T, weight: float) -> None:
        if weight < 0:
            raise SamplingError("weights must be non-negative")
        self._cum.append((self._cum[-1] if self._cum else 0.0) + weight)
        self.items.append(item)

    def extend(self, pairs: Iterable[tuple[T, float]]) -> None:
        for item, weight in pairs:
            self.append(item, weight)

    def sample(self, rng: random.Random) -> T:
        """One weighted draw; mirrors ``rng.choices(items, weights, k=1)[0]``."""
        items = self.items
        if not items:
            raise SamplingError("cannot sample from an empty sampler")
        cum = self._cum
        total = cum[-1] + 0.0
        if total <= 0.0:
            raise SamplingError("total weight must be positive")
        return items[bisect_right(cum, rng.random() * total, 0, len(items) - 1)]

    def sample_k(self, rng: random.Random, k: int) -> list[T]:
        """``k`` independent weighted draws (with replacement), identical to
        ``rng.choices(items, weights=..., k=k)`` for the same RNG state."""
        items = self.items
        if not items:
            raise SamplingError("cannot sample from an empty sampler")
        cum = self._cum
        total = cum[-1] + 0.0
        if total <= 0.0:
            raise SamplingError("total weight must be positive")
        hi = len(items) - 1
        uniform = rng.random
        return [items[bisect_right(cum, uniform() * total, 0, hi)] for _ in range(k)]


class AliasSampler(Generic[T]):
    """Vose's alias method: O(1) weighted draws from a *fixed* distribution.

    Build cost is O(n); each draw costs two uniforms and no search, which
    beats the cumulative table once a distribution is sampled many more
    times than it changes.  Not RNG-stream-compatible with ``choices``.
    """

    __slots__ = ("items", "_prob", "_alias")

    def __init__(self, items: Sequence[T], weights: Sequence[float]):
        if len(items) != len(weights):
            raise SamplingError("weights must match items")
        if not items:
            raise SamplingError("alias sampler needs at least one item")
        total = float(sum(weights))
        if total <= 0.0 or any(w < 0 for w in weights):
            raise SamplingError("weights must be non-negative with positive sum")
        n = len(items)
        self.items = list(items)
        scaled = [w * n / total for w in weights]
        prob = [0.0] * n
        alias = [0] * n
        small = [i for i, p in enumerate(scaled) if p < 1.0]
        large = [i for i, p in enumerate(scaled) if p >= 1.0]
        while small and large:
            s = small.pop()
            l = large.pop()
            prob[s] = scaled[s]
            alias[s] = l
            scaled[l] = (scaled[l] + scaled[s]) - 1.0
            (small if scaled[l] < 1.0 else large).append(l)
        for index in large:
            prob[index] = 1.0
        for index in small:  # numerical leftovers
            prob[index] = 1.0
        self._prob = prob
        self._alias = alias

    def __len__(self) -> int:
        return len(self.items)

    def sample(self, rng: random.Random) -> T:
        n = len(self.items)
        index = int(rng.random() * n)
        if index >= n:  # guard against random() returning values ~1.0
            index = n - 1
        if rng.random() < self._prob[index]:
            return self.items[index]
        return self.items[self._alias[index]]

    def sample_k(self, rng: random.Random, k: int) -> list[T]:
        return [self.sample(rng) for _ in range(k)]

"""The assembled world: all services wired together plus the timeline run.

``World(config)`` constructs the infrastructure (PLC directory, PDS shards,
Relay, AppView, DNS/web/WHOIS/Tranco, feed platforms, labelers) and
``world.run()`` executes the generative timeline from Bluesky's launch to
the end of the paper's measurement window.  Collectors attach *before*
``run()`` — exactly like the real study, which subscribed to the Firehose
on 2024-03-06 and crawled snapshots while the network kept moving.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.atproto.events import FirehoseEvent
from repro.atproto.keys import Keypair, make_keypair
from repro.identity.handles import publish_dns_proof, publish_well_known_proof
from repro.identity.plc import PlcDirectory
from repro.identity.resolver import DidResolver, publish_did_web_document
from repro.identity.did import DidDocument, ServiceEndpoint, PDS_SERVICE_ID
from repro.netsim.dns import DnsResolver, DnsZone
from repro.netsim.hosting import HostingClass, IpAllocator
from repro.netsim.tranco import TrancoList
from repro.netsim.web import WebHostRegistry
from repro.netsim.whois import (
    RegistrarDatabase,
    Registrar,
    WhoisService,
    cctld_registrars,
    long_tail_registrars,
)
from repro.services.appview import AppView
from repro.services.feedgen import FeedGeneratorHost, FeedRouter
from repro.services.feedservice import (
    ALL_PROFILES,
    FeedServicePlatform,
    PlatformProfile,
)
from repro.services.labeler import LabelerPolicies, LabelerService
from repro.services.pds import Pds
from repro.services.relay import Relay
from repro.services.xrpc import ServiceDirectory
from repro.simulation.clock import SimClock
from repro.simulation.config import SimulationConfig
from repro.simulation.feeds import FeedSpec, build_feed_specs
from repro.simulation.labelers import LabelerRuntime, build_labeler_specs
from repro.simulation.population import PopulationPlan, UserSpec, build_population

N_DEFAULT_PDS_SHARDS = 4
SELF_HOST_PDS_RATE = 0.002  # fraction of users running their own PDS


@dataclass
class UserState:
    """A live user: spec + identity + hosting."""

    spec: UserSpec
    did: str = ""
    keypair: Optional[Keypair] = None
    pds: Optional[Pds] = None
    joined: bool = False
    tombstoned: bool = False
    current_handle: str = ""
    handle_changes_done: int = 0


@dataclass
class FeedRuntime:
    """A live feed: spec + URI + hosting endpoint."""

    spec: FeedSpec
    uri: str = ""
    endpoint: str = ""
    service_did: str = ""
    feed_obj: Optional[object] = None
    announced: bool = False


class World:
    """The full simulated Bluesky deployment."""

    def __init__(self, config: SimulationConfig, telemetry=None):
        self.config = config
        self.rng = random.Random(config.seed ^ 0x5EED)
        self.clock = SimClock(config.start_us)

        # --- network substrate ---
        self.dns_zone = DnsZone()
        self.dns = DnsResolver(self.dns_zone)
        self.web = WebHostRegistry()
        self.services = ServiceDirectory()
        # Worker processes pass Telemetry.disabled(): replica worlds must
        # not trace or count — only the coordinator's registry survives.
        self.set_telemetry(telemetry if telemetry is not None else self.services.telemetry)
        self.registrars = RegistrarDatabase()
        for registrar in long_tail_registrars(242):
            self.registrars.add(registrar)
        for registrar in cctld_registrars(12):
            self.registrars.add(registrar)
        self.whois = WhoisService(self.registrars)
        self.tranco = TrancoList()
        self.ip_allocator = IpAllocator()

        # --- identity ---
        self.plc = PlcDirectory()
        self.resolver = DidResolver(self.plc, self.web)

        # --- core services ---
        self.pds_shards = [
            Pds("https://shard%02d.pds.bsky.network" % index)
            for index in range(N_DEFAULT_PDS_SHARDS)
        ]
        self.self_hosted_pdses: list[Pds] = []
        self.relay = Relay("https://bsky.network", cache_reads=config.read_caches)
        self.relay.set_telemetry(self.telemetry)
        for shard in self.pds_shards:
            # Registered, not crawled: the engine publishes every commit
            # explicitly in deterministic merged order (see engine.py).
            self.relay.register_pds(shard)
            self.services.register(shard.url, shard)
        self.services.register(self.relay.url, self.relay)
        self.appview = AppView(
            "https://api.bsky.app",
            self.resolver,
            self.services,
            index_posts=config.index_posts,
            index_timelines=config.read_caches,
            cache_views=config.read_caches,
            telemetry=self.telemetry,
        )
        self.appview.attach(self.relay)
        self.services.register(self.appview.url, self.appview)
        # Self-hosted feed-generator hosts created mid-run (create_feed);
        # tracked so telemetry rebinds reach them too.
        self._self_hosted_feed_hosts: list[FeedGeneratorHost] = []

        # --- population & ecosystem plans ---
        self.population: PopulationPlan = build_population(config)
        self.users: list[UserState] = [UserState(spec) for spec in self.population.users]
        self._register_domains()

        self.labelers: list[LabelerRuntime] = [
            LabelerRuntime(spec) for spec in build_labeler_specs(random.Random(config.seed + 1))
        ]
        self.feed_specs: list[FeedSpec] = build_feed_specs(
            config, self.population.users, random.Random(config.seed + 2)
        )
        self.feeds: list[FeedRuntime] = [FeedRuntime(spec) for spec in self.feed_specs]
        self.feed_router = FeedRouter()
        self.feed_platforms: dict[str, FeedServicePlatform] = {}
        self._build_feed_platforms()

        self._firehose_observers: list[tuple[int, Callable[[FirehoseEvent], None]]] = []
        self.relay.firehose.subscribe(self._dispatch_observers)
        # (time_us, callback(now_us)) actions the engine fires as the
        # timeline passes them — how collectors take mid-run snapshots.
        self.scheduled_actions: list[tuple[int, Callable[[int], None]]] = []
        # Bumped on every tombstone so cached live-user views (e.g. the
        # engine's impersonator pool) can invalidate in O(1).
        self.tombstone_epoch = 0
        # day_us -> (per-shard running digest, ...); filled by the engine,
        # embedded in checkpoints and verified on resume (see pipeline.py).
        self.shard_digest_log: dict[int, tuple] = {}
        self._ran = False

    # -- wiring helpers ------------------------------------------------------------

    def set_telemetry(self, telemetry) -> None:
        """Install the study telemetry: bind its virtual clock to the
        service directory's ``now_us`` and point the directory's metric
        families at its registry."""
        telemetry.bind_now_virtual(lambda: self.services.now_us)
        self.telemetry = telemetry
        self.services.set_telemetry(telemetry)
        # Rebind every service keeping read-path caches/counters.  Guarded
        # with getattr: the first call happens from __init__ before the
        # relay/appview/feed hosts exist.
        for service in self._read_path_services():
            service.set_telemetry(telemetry)

    def _read_path_services(self) -> list:
        services = [getattr(self, "appview", None), getattr(self, "relay", None)]
        services.extend(getattr(self, "feed_platforms", {}).values())
        services.extend(getattr(self, "_self_hosted_feed_hosts", ()))
        return [service for service in services if service is not None]

    def flush_read_caches(self) -> None:
        """Drop read-path cache contents everywhere.

        The pipeline calls this at every journal boundary so cache warmth
        never crosses an action: a crash/resume run (which skips completed
        actions instead of replaying their reads) then reports exactly the
        hit/miss totals of an uninterrupted run."""
        self.appview.flush_read_caches()
        self.relay.flush_read_caches()

    def _register_domains(self) -> None:
        """Register every custom handle domain in WHOIS (+ Tranco filler)."""
        for index, (domain, (registrar_name, is_cctld)) in enumerate(
            self.population.domain_registrations.items()
        ):
            registrar = self.registrars.get(registrar_name)
            if registrar is None:
                registrar = Registrar(None, registrar_name, icann_accredited=False)
                self.registrars.add(registrar)
            self.whois.register(domain, registrar)
            # Deterministic ~8% of WHOIS servers never answer (paper: the
            # scan reached 92% of registered domains).
            if index % 12 == 11:
                self.whois.mark_unresponsive(domain)

    def _build_feed_platforms(self) -> None:
        endpoints = {
            "Skyfeed": "https://skyfeed.me",
            "Bluefeed": "https://bluefeed.app",
            "Blueskyfeeds": "https://blueskyfeeds.com",
            "Goodfeeds": "https://goodfeeds.co",
            "Blueskyfeedcreator": "https://blueskyfeedcreator.com",
        }
        profile_by_name: dict[str, PlatformProfile] = {p.name: p for p in ALL_PROFILES}
        for name, endpoint in endpoints.items():
            host = endpoint[len("https://") :]
            platform = FeedServicePlatform(
                profile_by_name[name], "did:web:" + host, endpoint, telemetry=self.telemetry
            )
            self.services.register(endpoint, platform)
            self.ip_allocator.allocate(host, HostingClass.CLOUD)
            self.feed_platforms[name] = platform

    def add_firehose_observer(
        self, callback: Callable[[FirehoseEvent], None], start_us: int = 0
    ) -> None:
        """Attach a live firehose consumer active from ``start_us`` on."""
        self._firehose_observers.append((start_us, callback))

    def schedule(self, time_us: int, callback: Callable[[int], None]) -> None:
        """Run ``callback(now_us)`` when the timeline reaches ``time_us``.

        Must be called before :meth:`run`.  Used by collectors for their
        dated crawls (weekly listRepos, the April 24 repo snapshot, the
        bi-weekly feed crawls, daily labeler reconnects).
        """
        self.scheduled_actions.append((time_us, callback))

    def _dispatch_observers(self, event: FirehoseEvent) -> None:
        for start_us, callback in self._firehose_observers:
            if event.time_us >= start_us:
                callback(event)

    # -- account management (used by the engine) --------------------------------------

    def signup(self, user: UserState, now_us: int) -> None:
        """Create the account: keys, DID, repo, handle proofs."""
        spec = user.spec
        seed = b"user:%d:%d" % (self.config.seed, spec.index)
        keypair = make_keypair(seed, fast=self.config.fast_keys)
        user.keypair = keypair
        if self.rng.random() < SELF_HOST_PDS_RATE and spec.custom_domain:
            pds = Pds("https://pds.%s" % spec.custom_domain)
            self.self_hosted_pdses.append(pds)
            self.relay.register_pds(pds)
            self.services.register(pds.url, pds)
        else:
            pds = self.pds_shards[spec.index % len(self.pds_shards)]
        user.pds = pds

        if spec.identity_method == "web":
            did = "did:web:%s" % spec.handle
            doc = DidDocument(did=did, handle=spec.handle, signing_key=keypair.did_key())
            doc.set_service(ServiceEndpoint(PDS_SERVICE_ID, "AtprotoPersonalDataServer", pds.url))
            publish_did_web_document(self.web, doc)
        else:
            did = self.plc.create(
                rotation_keypair=keypair,
                signing_key=keypair.did_key(),
                handle=spec.handle,
                pds_endpoint=pds.url,
            )
        user.did = did
        user.current_handle = spec.handle
        self._publish_handle_proof(spec, did)
        pds.create_account(did, keypair)
        user.joined = True

    def _publish_handle_proof(self, spec: UserSpec, did: str) -> None:
        if spec.is_bsky_handle:
            # bsky.social subdomains are auto-linked via well-known files.
            publish_well_known_proof(self.web, spec.handle, did)
        elif spec.verification_mechanism == "dns-txt":
            publish_dns_proof(self.dns_zone, spec.handle, did)
        else:
            publish_well_known_proof(self.web, spec.handle, did)

    def change_handle(
        self, user: UserState, new_handle: str, now_us: int, publish: bool = True
    ) -> None:
        """Rotate a handle.  ``publish=False`` applies the identity-side
        state only — worker replicas replay handle changes in lockstep but
        must not emit events on their (discarded) replica firehose."""
        if user.spec.identity_method == "web":
            return  # did:web identifiers cannot change their domain
        self.plc.update(user.did, user.keypair, handle=new_handle)
        user.current_handle = new_handle
        publish_dns_proof(self.dns_zone, new_handle, user.did)
        if publish:
            self.relay.publish_handle_event(user.did, new_handle, now_us)
            self.relay.publish_identity_event(user.did, now_us, handle=new_handle)

    def tombstone_user(self, user: UserState, now_us: int) -> None:
        if user.spec.identity_method != "web":
            self.plc.tombstone(user.did, user.keypair)
        user.pds.remove_account(user.did, now_us)
        user.tombstoned = True
        self.tombstone_epoch += 1

    # -- labeler / feed instantiation (used by the engine) ------------------------------

    def start_labeler(self, runtime: LabelerRuntime, now_us: int, write_record: bool = True):
        """Bring a labeler online: account, service record, endpoint.

        Returns the service-record ``CommitMeta`` (or None).  In sharded
        runs every process replays the start so replica state stays in
        lockstep, but only the owner of the labeler's shard passes
        ``write_record=True`` and queues the returned commit for the
        deterministic merge.
        """
        spec = runtime.spec
        keypair = make_keypair(b"labeler:" + spec.key.encode(), fast=self.config.fast_keys)
        handle = "%s.bsky.social" % spec.key.replace("-", "")
        pds = self.pds_shards[0]
        did = self.plc.create(
            rotation_keypair=keypair,
            signing_key=keypair.did_key(),
            handle=handle,
            pds_endpoint=pds.url,
        )
        pds.create_account(did, keypair)
        runtime.did = did
        host = "%s.labeler.example" % spec.key
        endpoint = "https://" + host
        runtime.endpoint = endpoint
        service = LabelerService(
            did,
            endpoint,
            LabelerPolicies(
                label_values=spec.values,
                descriptions={v: {"severity": "inform"} for v in spec.values},
            ),
            signing_keypair=keypair,
        )
        runtime.service = service
        if spec.is_official:
            # Clients are force-subscribed to the official labeler and its
            # !takedown labels purge content from the AppView (Section 6.2).
            self.appview.official_labeler_did = did
        # Announce: service record in the repo + endpoint in the DID doc.
        from repro.simulation.clock import iso_timestamp

        meta = None
        if write_record:
            meta = pds.create_record(
                did,
                "app.bsky.labeler.service",
                service.service_record(iso_timestamp(now_us)),
                now_us,
                rkey="self",
            )
        self.plc.update(did, keypair, labeler_endpoint=endpoint)
        self.relay.publish_identity_event(did, now_us)
        if spec.functional:
            self.services.register(endpoint, service)
            address = self.ip_allocator.allocate(
                host,
                spec.hosting if spec.hosting is not None else HostingClass.CLOUD,
            )
            from repro.netsim.dns import DnsRecordType

            self.dns_zone.add(host, DnsRecordType.A, address.ip)
            self.appview.add_labeler(service)
        # Non-functional labelers announce but never expose an endpoint.
        return meta

    def create_feed(self, runtime: FeedRuntime, now_us: int, write_record: bool = True):
        """Instantiate a feed on its platform and announce it.

        Returns the generator-record ``CommitMeta`` (or None); the same
        replay-everywhere / write-on-owner split as :meth:`start_labeler`.
        """
        from repro.services.feedgen import (
            CuratedFeed,
            FeedRule,
            PersonalizedFeed,
            RetentionPolicy,
        )
        from repro.simulation.clock import iso_timestamp
        from repro.simulation import feeds as feeds_mod

        spec = runtime.spec
        creator = self.users[spec.creator_index]
        if not creator.joined or creator.tombstoned:
            return None  # creator must exist; engine retries are not needed
        uri = "at://%s/app.bsky.feed.generator/%s" % (creator.did, spec.rkey)
        runtime.uri = uri

        if spec.unhosted:
            # The record is announced but the service never goes up: the
            # paper's feeds-without-metadata (≈6% of discovered feeds).
            host_fqdn = "feed-%05d.dead.example" % spec.index
            runtime.endpoint = "https://" + host_fqdn
            runtime.service_did = "did:web:" + host_fqdn
            meta = None
            if write_record:
                record = {
                    "$type": "app.bsky.feed.generator",
                    "did": runtime.service_did,
                    "displayName": spec.display_name,
                    "description": spec.description,
                    "createdAt": iso_timestamp(now_us),
                }
                meta = creator.pds.create_record(
                    creator.did, "app.bsky.feed.generator", record, now_us, rkey=spec.rkey
                )
            runtime.announced = True
            return meta

        if spec.platform == feeds_mod.SELF_HOSTED:
            host_fqdn = "feed-%05d.self.example" % spec.index
            endpoint = "https://" + host_fqdn
            service_did = "did:web:" + host_fqdn
            host = FeedGeneratorHost(service_did, endpoint, telemetry=self.telemetry)
            self._self_hosted_feed_hosts.append(host)
            self.services.register(endpoint, host)
            self.ip_allocator.allocate(host_fqdn, HostingClass.CLOUD)
        else:
            platform = self.feed_platforms[spec.platform]
            host = platform
            endpoint = platform.endpoint
            service_did = platform.service_did
        runtime.endpoint = endpoint
        runtime.service_did = service_did

        if spec.kind == feeds_mod.KIND_PERSONALIZED:
            feed_obj = PersonalizedFeed(uri, self._personalized_source())
            host.add_feed(feed_obj)
        else:
            rule = self._rule_for(spec, creator)
            retention = RetentionPolicy()
            if spec.retention_days is not None:
                retention = RetentionPolicy.days(spec.retention_days)
            elif spec.retention_count is not None:
                retention = RetentionPolicy.last(spec.retention_count)
            if isinstance(host, FeedServicePlatform):
                feed_obj = host.create_feed(creator.did, uri, rule, retention)
            else:
                feed_obj = CuratedFeed(uri, rule, retention)
                host.add_feed(feed_obj)
            feed_obj.stop_ingest_after_us = spec.inactive_after_us
            self.feed_router.register(feed_obj)
        runtime.feed_obj = feed_obj

        meta = None
        if write_record:
            record = {
                "$type": "app.bsky.feed.generator",
                "did": service_did,
                "displayName": spec.display_name,
                "description": spec.description,
                "createdAt": iso_timestamp(now_us),
            }
            meta = creator.pds.create_record(
                creator.did, "app.bsky.feed.generator", record, now_us, rkey=spec.rkey
            )
        runtime.announced = True
        return meta

    def _rule_for(self, spec, creator: UserState):
        from repro.services.feedgen import FeedRule
        from repro.simulation import feeds as feeds_mod

        if spec.kind == feeds_mod.KIND_AGGREGATOR:
            return FeedRule(whole_network=True)
        if spec.kind == feeds_mod.KIND_LANGUAGE:
            return FeedRule(languages=frozenset(spec.languages))
        if spec.kind == feeds_mod.KIND_AUTHOR:
            return FeedRule(authors=frozenset({creator.did}))
        if spec.kind == feeds_mod.KIND_DEAD:
            if spec.topic:
                return FeedRule(keywords=frozenset({spec.topic}))
            return FeedRule(authors=frozenset({"did:plc:" + "0" * 24}))
        # Topic feed.
        return FeedRule(
            keywords=frozenset({spec.topic}),
            regex=spec.regex,
            languages=frozenset(spec.languages),
        )

    def _personalized_source(self):
        """Personalized feeds serve the viewer's recently liked posts."""
        recent_likes = self.recent_likes_by_viewer = getattr(
            self, "recent_likes_by_viewer", {}
        )

        def source(viewer: str):
            return list(recent_likes.get(viewer, ()))

        return source

    # -- running ---------------------------------------------------------------------------

    def run(
        self,
        progress: Optional[Callable[[str], None]] = None,
        workers: int = 1,
        worker_fault_plan=None,
        supervision=None,
    ) -> "World":
        """Execute the timeline; idempotent.

        ``workers > 1`` spreads the logical shards over that many spawned
        worker processes; every artefact is byte-identical to ``workers=1``
        for the same seed (the deterministic-merge guarantee) — including
        under a ``worker_fault_plan`` injecting worker kills/hangs, which
        the supervisor recovers by deterministic restart-and-replay.
        """
        if self._ran:
            return self
        from repro.simulation.engine import Engine

        Engine(
            self,
            workers=workers,
            worker_fault_plan=worker_fault_plan,
            supervision=supervision,
        ).run(progress=progress)
        self._ran = True
        return self

    # -- convenience views --------------------------------------------------------------------

    def live_users(self) -> list[UserState]:
        return [u for u in self.users if u.joined and not u.tombstoned]

    def user_by_did(self) -> dict[str, UserState]:
        return {u.did: u for u in self.users if u.joined}

    def official_labeler(self) -> LabelerRuntime:
        return next(r for r in self.labelers if r.spec.is_official)

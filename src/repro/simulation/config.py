"""Simulation calibration.

Every constant here traces to a number published in the paper; the
``scale`` knobs shrink population-level counts so the world fits in one
process while preserving shares and shapes.  DESIGN.md documents the
scaling policy: user/event volumes scale by ``scale``; ecosystem actor
counts (labelers, feed services) stay near their real sizes so the
ecosystem-structure figures remain meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simulation.clock import date_us

# ---------------------------------------------------------------------------
# Paper ground truth (full-scale numbers, for calibration and reporting)
# ---------------------------------------------------------------------------

PAPER = {
    # Section 1 / 3 dataset sizes
    "users": 5_523_919,
    "identifiers": 5_591_824,
    "did_documents": 5_077_159,
    "did_web_documents": 6,
    "posts_total": 225_000_000,
    "likes_total": 740_000_000,
    "follows_total": 160_900_000,
    "reposts_total": 77_900_000,
    "blocks_total": 10_800_000,
    # Table 1 firehose event shares
    "firehose_events": 279_289_739,
    "share_commit": 0.9978,
    "share_identity": 0.0019,
    "share_handle": 0.0002,
    "share_tombstone": 0.0001,
    # Section 4 current status (April 2024 steady state)
    "daily_active_users": 500_000,
    "daily_likes": 3_000_000,
    "daily_posts": 800_000,
    "daily_reposts": 300_000,
    # Section 5 identity
    "bsky_social_handle_share": 0.989,
    "non_bsky_fqdn_handles": 57_202,
    "registered_domains": 51_879,
    "tranco_top1m_share": 0.028,
    "dns_txt_mechanism_share": 0.987,
    "well_known_mechanism_share": 0.013,
    "whois_response_rate": 0.92,
    "iana_id_extraction_rate": 0.76,
    "registrar_count": 249,
    "handle_updates": 44_456,
    "handle_update_unique_dids": 31_494,
    "final_handle_bsky_share": 0.7574,
    # Section 6 moderation
    "labelers_announced": 62,
    "labelers_functional": 46,
    "labelers_active": 36,
    "label_interactions": 3_402_009,
    "labels_rescinded": 23_394,
    "labeled_objects": 3_160_851,
    "distinct_label_values_raw": 222,
    "distinct_label_values_clean": 196,
    "share_labeled_posts": 0.9963,
    "share_labeled_accounts": 0.0023,
    "share_labeled_profile_media": 0.0014,
    "multi_labeler_object_share": 0.032,
    "bsky_and_community_overlap_share": 0.018,
    "labeler_cloud_share": 0.65,
    "labeler_residential_share": 0.10,
    "labeler_unreachable_share": 0.26,
    # Section 7 recommendation
    "feed_generators_discovered": 43_063,
    "feed_generators_reachable": 40_398,
    "feed_posts_collected": 21_520_083,
    "feedgen_never_posted_share": 0.094,
    "feedgen_inactive_share": 0.218,
    "feedgen_bogus_timestamp_count": 2_202,
    "skyfeed_feed_share": 0.8586,
    "goodfeeds_feed_share": 0.0436,
    "top3_service_share": 0.958,
    "skyfeed_post_share": 0.303,
    "skyfeed_like_share": 0.612,
    "goodfeeds_post_share": 0.356,
    "goodfeeds_like_share": 0.012,
    "pearson_feed_count_vs_followers": 0.005,
    "pearson_feed_likes_vs_followers": 0.533,
    "one_feed_manager_share": 0.621,
    "max_feeds_one_account": 1_799,
}

# Language communities: (tag, share of taggable posts, description share of
# feed generators).  Post shares approximate Figure 2's user mix; feed
# description shares come from Section 7.1 (en 45%, ja 36%, de 4.1%,
# ko 2.0%, fr 1.9%).
LANGUAGES = (
    ("en", 0.42, 0.45),
    ("ja", 0.36, 0.36),
    ("pt", 0.10, 0.012),
    ("de", 0.05, 0.041),
    ("ko", 0.03, 0.020),
    ("fr", 0.04, 0.019),
)

# Growth milestones (Section 4 / Figure 1).
LAUNCH_US = date_us("2022-11-17")
FEEDGEN_INTRO_US = date_us("2023-05-01")
OFFICIAL_LABELER_START_US = date_us("2023-04-01")
COMMUNITY_LABELERS_OPEN_US = date_us("2024-03-15")
PUBLIC_OPENING_US = date_us("2024-02-06")
SIM_END_US = date_us("2024-05-11")

# Collection windows (Section 3).
FIREHOSE_COLLECT_START_US = date_us("2024-03-06")
FIREHOSE_COLLECT_END_US = date_us("2024-04-30")
REPO_SNAPSHOT_US = date_us("2024-04-24")
DIDDOC_SNAPSHOT_US = date_us("2024-03-20")
FEED_COLLECT_START_US = date_us("2024-04-16")
FEED_COLLECT_END_US = date_us("2024-05-10")
LABEL_SNAPSHOT_US = date_us("2024-05-01")


@dataclass
class SimulationConfig:
    """All knobs of a simulated world."""

    seed: int = 2024
    # Population scale: fraction of the paper's 5.52M users.
    scale: float = 1 / 4000
    # Feed-generator scale: fraction of the paper's 43k generators.
    feed_scale: float = 1 / 250
    # Activity scale relative to per-user rates implied by the paper;
    # lowering it thins event volume without shrinking the population.
    activity_scale: float = 1.0
    # Use fast HMAC keypairs instead of real secp256k1 (see keys.py).
    fast_keys: bool = True
    # Keep full post index in the AppView (needed for getFeed hydration).
    index_posts: bool = True
    # Read-path acceleration: per-follower timeline index + hydrated view
    # caches in the AppView, CAR/block caches in the Relay.  Artefacts are
    # byte-identical either way; off forces the reference scan paths.
    read_caches: bool = True
    start_us: int = LAUNCH_US
    end_us: int = SIM_END_US
    # Extension scenario (the paper's footnote 6): extend the timeline to
    # September 2024 and simulate the Brazilian X-ban migration wave that
    # happened after the measurement window closed.
    brazil_ban_scenario: bool = False
    # Logical shard count for the parallel engine (matching the default
    # PDS shard layout).  This is a determinism invariant of the run, NOT
    # a parallelism knob: a user belongs to shard ``index % sim_shards``
    # and every RNG stream is keyed per shard, so changing it changes the
    # generated world.  ``--workers N`` (any N) spreads these fixed shards
    # over processes without affecting any artefact.
    sim_shards: int = 4

    def __post_init__(self):
        if self.brazil_ban_scenario and self.end_us <= SIM_END_US:
            self.end_us = date_us("2024-10-01")

    # -- derived population sizes ------------------------------------------------

    @property
    def n_users(self) -> int:
        return max(50, int(PAPER["users"] * self.scale))

    @property
    def n_feed_generators(self) -> int:
        return max(20, int(PAPER["feed_generators_discovered"] * self.feed_scale))

    @property
    def n_labelers(self) -> int:
        # Labelers are NOT scaled: the ecosystem is 62 actors in the paper
        # and its structure (Table 6) is the object of study.
        return PAPER["labelers_announced"]

    def target_ops(self) -> dict[str, int]:
        """Lifetime operation totals, scaled."""
        factor = self.scale * self.activity_scale
        return {
            "post": int(PAPER["posts_total"] * factor),
            "like": int(PAPER["likes_total"] * factor),
            "follow": int(PAPER["follows_total"] * factor),
            "repost": int(PAPER["reposts_total"] * factor),
            "block": int(PAPER["blocks_total"] * factor),
        }

    # -- presets -------------------------------------------------------------------

    @classmethod
    def tiny(cls, seed: int = 2024) -> "SimulationConfig":
        """Fast preset for unit/integration tests (seconds to build)."""
        return cls(seed=seed, scale=1 / 60_000, feed_scale=1 / 1200, activity_scale=0.5)

    @classmethod
    def small(cls, seed: int = 2024) -> "SimulationConfig":
        """Medium preset for example scripts."""
        return cls(seed=seed, scale=1 / 12_000, feed_scale=1 / 500)

    @classmethod
    def bench(cls, seed: int = 2024) -> "SimulationConfig":
        """Preset used by the benchmark harness (minutes to build)."""
        return cls(seed=seed, scale=1 / 4000, feed_scale=1 / 250)

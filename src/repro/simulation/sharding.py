"""Deterministic sharding primitives for the parallel simulation engine.

The population is partitioned into ``config.sim_shards`` *logical* shards
(user → shard via :func:`shard_of`, matching the PDS assignment rule).
The shard count is a property of the configuration, **not** of the worker
count: a run with ``--workers 4`` and a run with ``--workers 1`` execute
the same per-shard event streams and merge them with the same rule, which
is what makes every artefact byte-identical across worker counts.

Three pieces live here because both the coordinator and the spawned
workers need them:

* **Seed derivation** (:func:`derive_seed`) — every RNG stream the engine
  consumes is keyed by ``sha256(seed | label [| shard])``, so shard
  streams are independent of each other and of the replicated global
  streams (schedules, signup decisions, lifecycle jitter).
* **Day batches** (:class:`DayBatch`, :func:`merged_items`) — the items a
  shard produces in one simulated day, merged across shards with the
  deterministic sequencing rule ``(virtual time, shard id, intra-shard
  order)`` before the relay assigns firehose sequence numbers.
* **The recent-post pool** (:class:`RecentPostPool`) — the cross-shard
  exchange state behind ``_pick_post``.  Its eviction rule is explicit:
  bounded FIFO, oldest-first, where "oldest" means application order and
  application order is the merged order above.  Same-day posts from other
  shards become visible at the next day barrier; a shard sees its own
  same-day posts through a local overlay (see ``ShardEngine``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Optional

# Pool bounds (previously implicit ``deque(maxlen=...)`` defaults inside
# the engine; the exchange step replicates them, so they are named).
RECENT_POOL_MAXLEN = 4000
POPULAR_POOL_MAXLEN = 500

# Day-batch item kinds.
K_COMMIT = 0  # a repo commit to publish on the relay firehose
K_POST = 1  # a created post entering the cross-shard pools + feed routing
K_LABEL = 2  # a label emission (or negation) by a labeler service
K_VIEWER_LIKE = 3  # a viewer's recent-like entry (personalized feeds)


def derive_seed(seed: int, label: str, shard: Optional[int] = None) -> int:
    """A 64-bit stream seed derived from the run seed and a stream label.

    Documented scheme (EXPERIMENTS.md "Sharded simulation"): the first 8
    bytes of ``sha256("repro-shard|<seed>|<label>[|<shard>]")``, big
    endian.  SHA-256 keeps streams independent for *any* seed/label pair
    — XOR-style mixing can collide across nearby seeds.
    """
    text = "repro-shard|%d|%s" % (seed, label)
    if shard is not None:
        text += "|%d" % shard
    return int.from_bytes(hashlib.sha256(text.encode("ascii")).digest()[:8], "big")


def shard_of(user_index: int, n_shards: int) -> int:
    """The logical shard owning a user (same rule as PDS assignment)."""
    return user_index % n_shards


@dataclass
class RecentPost:
    """A pool entry: enough of a post to like/repost it from any shard."""

    uri: str
    cid: str
    author_did: str
    time_us: int
    popular: bool = False


class RecentPostPool:
    """Bounded FIFO pool with an explicit, documented eviction rule.

    **Eviction rule**: when the pool holds ``maxlen`` entries, appending
    evicts the single oldest entry, where age is *application order* —
    the order entries were appended, which for a sharded run is the
    deterministic merged order ``(time_us, shard id, intra-shard seq)``
    applied at the day barrier.  Index 0 is always the oldest surviving
    entry; indexes are stable between barriers, so a uniform
    ``rng.randrange(len(pool))`` draw selects the same post in every
    process and at every worker count.

    Implemented as a ring buffer: O(1) append *and* O(1) random access
    (the previous ``collections.deque`` gave O(n) indexing, which the
    like/repost hot path pays on every draw).
    """

    __slots__ = ("maxlen", "_ring", "_start")

    def __init__(self, maxlen: int):
        if maxlen <= 0:
            raise ValueError("pool maxlen must be positive")
        self.maxlen = maxlen
        self._ring: list[RecentPost] = []
        self._start = 0

    def append(self, post: RecentPost) -> None:
        if len(self._ring) < self.maxlen:
            self._ring.append(post)
        else:
            # Full: overwrite the oldest slot and advance the ring origin.
            self._ring[self._start] = post
            self._start = (self._start + 1) % self.maxlen

    def extend(self, posts: Iterable[RecentPost]) -> None:
        for post in posts:
            self.append(post)

    def __len__(self) -> int:
        return len(self._ring)

    def __bool__(self) -> bool:
        return bool(self._ring)

    def __getitem__(self, index: int) -> RecentPost:
        """``pool[0]`` is the oldest entry, ``pool[len-1]`` the newest."""
        ring = self._ring
        if len(ring) < self.maxlen:
            return ring[index]
        if not 0 <= index < len(ring):
            raise IndexError(index)
        return ring[(self._start + index) % self.maxlen]

    def snapshot(self) -> list[RecentPost]:
        return [self[i] for i in range(len(self))]


@dataclass
class DayBatch:
    """Everything one shard produced in one simulated day.

    ``items`` is a list of ``(time_us, kind, payload)`` tuples in
    generation order; the list index is the intra-shard sequence number
    used by the merge rule.  The batch is picklable (payloads are
    ``CommitMeta`` / :class:`RecentPost` / ``PostFeatures`` / primitive
    tuples), so worker processes ship it to the coordinator as-is.
    """

    shard_id: int
    items: list = field(default_factory=list)
    gen_wall_us: float = 0.0  # generation wall time, for shard.day spans


def merged_items(batches: Iterable[DayBatch]) -> list:
    """Merge day batches with the deterministic sequencing rule.

    Returns ``(time_us, shard_id, intra_shard_seq, item)`` tuples sorted
    by exactly that triple.  The shard layout is fixed by configuration,
    so the merged order — and therefore every relay sequence number —
    is independent of how many worker processes produced the batches.
    """
    keyed = []
    for batch in batches:
        shard_id = batch.shard_id
        for index, item in enumerate(batch.items):
            keyed.append((item[0], shard_id, index, item))
    keyed.sort(key=lambda entry: (entry[0], entry[1], entry[2]))
    return keyed


def digest_batch(hasher, batch: DayBatch) -> None:
    """Fold a batch's deterministic content into a running shard digest.

    Used for the per-shard checkpoint segments: a resumed run re-derives
    the same digests day by day, and the pipeline verifies them against
    the journal, proving the resumed simulation is byte-identical to the
    one the checkpoint was taken from.  Wall times are excluded.
    """
    update = hasher.update
    for time_us, kind, payload in batch.items:
        if kind == K_COMMIT:
            did, meta, counts = payload
            update(
                b"c|%d|%s|%s|%s|%d\n"
                % (time_us, did.encode(), meta.rev.encode(), str(meta.commit_cid).encode(), counts)
            )
        elif kind == K_POST:
            post, _features = payload
            update(b"p|%d|%s|%d\n" % (time_us, post.uri.encode(), post.popular))
        elif kind == K_LABEL:
            labeler_index, uri, value, cts_us, neg = payload
            update(
                b"l|%d|%d|%s|%s|%d|%d\n"
                % (time_us, labeler_index, uri.encode(), value.encode(), cts_us, neg)
            )
        elif kind == K_VIEWER_LIKE:
            did, uri, like_us = payload
            update(b"v|%d|%s|%s\n" % (like_us, did.encode(), uri.encode()))

"""The labeler ecosystem, calibrated to Tables 3, 4, and 6.

Each spec describes one labeler: which post/account attributes trigger it,
its label vocabulary, its reaction-time regime (automated labelers answer
in seconds with tight spread; manual ones in hours-to-weeks with huge
variance), when it came online (the official labeler in April 2023, the
community after 2024-03-15), whether its endpoint works at all, and where
it is hosted (cloud / residential — Section 6.1's IP analysis).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Optional

from repro.netsim.hosting import HostingClass
from repro.simulation.clock import US_PER_SECOND
from repro.simulation.config import COMMUNITY_LABELERS_OPEN_US, OFFICIAL_LABELER_START_US

# Trigger names map to post attributes produced by the activity engine.
TRIGGER_NSFW = "nsfw"
TRIGGER_MISSING_ALT = "missing_alt"
TRIGGER_TENOR = "tenor"
TRIGGER_SCREENSHOT = "screenshot"
TRIGGER_AI = "ai_tag"
TRIGGER_FF14 = "ff14"
TRIGGER_RANDOM = "random"  # low-volume manual labelers sample at random


@dataclass
class ReactionProfile:
    """Log-normal reaction-time model (median + spread, in seconds)."""

    median_s: float
    sigma: float  # log-space std deviation

    def sample_us(self, rng: random.Random) -> int:
        value = self.median_s * math.exp(rng.gauss(0.0, self.sigma))
        return max(1, int(value * US_PER_SECOND))


AUTOMATED = ReactionProfile(1.0, 0.35)


@dataclass
class LabelerSpec:
    """One labeler's static configuration."""

    key: str  # stable id used for handles/seeds
    display_name: str
    values: tuple[str, ...]  # label vocabulary
    trigger: str
    trigger_probability: float  # applied to matching posts
    reaction: ReactionProfile
    start_us: int
    operator_known: bool = True
    functional: bool = True  # endpoint reachable at all
    hosting: HostingClass = HostingClass.CLOUD
    is_official: bool = False
    expected_likes: int = 0  # likes on the labeler account (Table 3)
    rescind_rate: float = 0.007
    account_values: tuple[str, ...] = ()  # values applied to whole accounts
    profile_values: tuple[str, ...] = ()  # values applied to avatars/banners

    def value_for(self, rng: random.Random) -> str:
        return self.values[rng.randrange(len(self.values))]


def _manual(median_s: float, sigma: float = 2.2) -> ReactionProfile:
    return ReactionProfile(median_s, sigma)


def build_labeler_specs(rng: random.Random) -> list[LabelerSpec]:
    """The 62 labelers: top actors from Table 6 plus a generated tail."""
    specs: list[LabelerSpec] = []

    specs.append(
        LabelerSpec(
            key="bluesky-official",
            display_name="Bluesky Moderation",
            values=(
                "porn", "sexual", "nudity", "graphic-media", "gore", "corpse",
                "spam", "!takedown", "!warn", "!hide", "intolerant",
                "sexual-figurative", "threat", "impersonation", "self-harm",
                "misleading", "rude", "harassment", "extremist", "scam",
                "security", "unsafe-link", "copyright", "doxxing",
                "engagement-farming", "fake-account", "hate-symbols",
                "inauthentic", "malware", "phishing", "spoilers-official",
                "violence",
            ),
            trigger=TRIGGER_NSFW,
            trigger_probability=0.92,
            reaction=ReactionProfile(1.76, 0.6),
            start_us=OFFICIAL_LABELER_START_US,
            is_official=True,
            expected_likes=2000,
            account_values=("!takedown", "spam", "impersonation"),
            profile_values=("sexual", "porn", "nudity", "gore", "self-harm"),
        )
    )
    specs.append(
        LabelerSpec(
            key="baatl",
            display_name="Bad Accessibility / Alt Text Labeler",
            values=("no-alt-text", "non-alt-text", "mis-alt-text", "alt-text-ok"),
            trigger=TRIGGER_MISSING_ALT,
            trigger_probability=0.97,
            reaction=ReactionProfile(0.58, 0.18),
            start_us=COMMUNITY_LABELERS_OPEN_US,
            expected_likes=99,
        )
    )
    specs.append(
        LabelerSpec(
            key="xblock",
            display_name="XBlock Screenshot Labeler",
            values=(
                "twitter-screenshot", "bluesky-screenshot",
                "uncategorised-screenshot", "tumblr-screenshot",
                "facebook-screenshot", "instagram-screenshot",
                "threads-screenshot", "tiktok-screenshot", "reddit-screenshot",
                "youtube-screenshot", "discord-screenshot", "news-screenshot",
                "mastodon-screenshot", "linkedin-screenshot",
            ),
            trigger=TRIGGER_SCREENSHOT,
            trigger_probability=0.9,
            reaction=ReactionProfile(3.70, 0.9),
            start_us=COMMUNITY_LABELERS_OPEN_US,
            expected_likes=301,
        )
    )
    specs.append(
        LabelerSpec(
            key="no-gifs",
            display_name="No GIFS Please",
            values=("tenor-gif", "tenor-gif-no-text"),
            trigger=TRIGGER_TENOR,
            trigger_probability=0.95,
            reaction=ReactionProfile(0.35, 0.3),
            start_us=COMMUNITY_LABELERS_OPEN_US,
            operator_known=False,
            expected_likes=88,
        )
    )
    specs.append(
        LabelerSpec(
            key="ai-imagery",
            display_name="AI Imagery Labeler",
            values=("ai-imagery",),
            trigger=TRIGGER_AI,
            trigger_probability=0.9,
            reaction=ReactionProfile(0.82, 0.25),
            start_us=COMMUNITY_LABELERS_OPEN_US,
            operator_known=False,
            expected_likes=546,
            account_values=("ai-imagery",),
        )
    )
    specs.append(
        LabelerSpec(
            key="ff14",
            display_name="FF14 Spoiler Labeler",
            values=("shadowbringers", "endwalker", "dawntrail", "stormblood",
                    "heavensward", "arr-spoiler"),
            trigger=TRIGGER_FF14,
            trigger_probability=0.85,
            reaction=ReactionProfile(2.07, 0.5),
            start_us=COMMUNITY_LABELERS_OPEN_US,
            expected_likes=15,
        )
    )
    specs.append(
        LabelerSpec(
            key="ai-related",
            display_name="AI Related Content",
            values=("ai-related-content", "spoiler", "test-label"),
            trigger=TRIGGER_AI,
            trigger_probability=0.12,
            reaction=ReactionProfile(1.32, 0.6),
            start_us=COMMUNITY_LABELERS_OPEN_US,
            expected_likes=30,
        )
    )

    # Manual community labelers from the bottom of Table 6: tiny volumes,
    # reaction medians from hours to weeks, idiosyncratic vocabularies.
    manual_rows = (
        ("community-watch", ("trolling", "transphobia", "racial-intolerance",
                             "ableism", "misogyny", "antisemitism", "islamophobia",
                             "homophobia", "xenophobia", "classism", "bodyshaming",
                             "casteism", "ageism"), 13_911.9, 876,
         ("trolling", "transphobia")),
        ("furry-tags", ("pup", "fatfur", "diaper", "feral", "vore", "inflation",
                        "macro", "micro", "goo", "taur", "paws", "muzzle",
                        "scalie", "avian", "hybrid", "plush", "latex", "maw"),
         34_408.4, 631, ()),
        ("beans", ("beans",), 90.4, 49, ()),
        ("cringe-patrol", ("simping", "bad-selfies", "cringe", "main-character",
                           "reply-guy"), 70_413.5, 32, ()),
        ("quality-control", ("lowquality", "shorturl", "unknown-source",
                             "clickbait", "paywall", "auto-repost"), 104_584.6, 26, ()),
        ("alf-zone", ("alf", "sensual-alf", "the-format"), 38_417.7, 18, ()),
        ("severity-tester", ("severity-alert-blurs-content",
                             "severity-alert-blurs-media",
                             "severity-alert-blurs-none", "severity-inform",
                             "severity-none-a", "severity-none-b",
                             "severity-none-c", "severity-none-d",
                             "severity-none-e"), 937.6, 18, ()),
        ("spam-ja", ("spam-aff-ja", "spam", "porn", "spam-crypto"), 534_935.1, 16, ()),
        ("vibes", ("so-true", "epic", "based", "real"), 526.0, 16, ()),
        ("warnings", ("!warn", "threat", "triggerwarning", "flashing-lights",
                      "loud-audio", "eye-contact", "food", "insects", "needles",
                      "trypophobia"), 109_931.1, 14, ()),
        ("phobia-tags", ("coulro", "arachno", "lepidoptero", "ophidio",
                         "entomo", "acro"), 260_512.0, 11, ()),
        ("discourse", ("neutral-pro-discourse", "anti-discourse"), 2_120.6, 10, ()),
        ("spoiler-guard", ("spoilers", "!no-promote", "!no-unauthenticated"),
         1_585_404.6, 4, ()),
        ("inside-jokes", ("nipps", "no-church", "non-handshake"), 154_416.5, 4, ()),
        ("mixed-bag", ("!warn", "porn", "spam"), 5_204.0, 3, ()),
        ("disinfo-watch", ("amplifying-disinfo",), 5_445.1, 3, ("amplifying-disinfo",)),
        ("bean-hate", ("beanhate", "feature-scold"), 5_900.4, 2, ()),
    )
    for key, values, median_s, expected_total, account_values in manual_rows:
        specs.append(
            LabelerSpec(
                key=key,
                display_name=key.replace("-", " ").title(),
                values=tuple(values),
                trigger=TRIGGER_RANDOM,
                # Expected totals are full-scale label counts over the
                # window; the engine converts them into per-post sampling.
                trigger_probability=float(expected_total),
                reaction=_manual(median_s),
                start_us=COMMUNITY_LABELERS_OPEN_US,
                operator_known=rng.random() < 0.6,
                expected_likes=rng.randrange(0, 40),
                account_values=tuple(account_values),
                hosting=(
                    HostingClass.RESIDENTIAL if rng.random() < 0.18 else HostingClass.CLOUD
                ),
            )
        )

    # Announced-but-dead labelers: 62 total, 46 functional, 36 active.
    active_count = len(specs)  # 24 so far; 12 more silent-but-functional
    for index in range(36 - active_count):
        specs.append(
            LabelerSpec(
                key="silent-%02d" % index,
                display_name="Silent Labeler %02d" % index,
                values=("experimental-%02d" % index,),
                trigger=TRIGGER_RANDOM,
                trigger_probability=1.0,  # one label each: "issued at least one"
                reaction=_manual(50_000.0),
                start_us=COMMUNITY_LABELERS_OPEN_US,
                operator_known=False,
                hosting=(
                    HostingClass.RESIDENTIAL if rng.random() < 0.15 else HostingClass.CLOUD
                ),
            )
        )
    for index in range(10):  # functional, never issued a label (46 - 36)
        specs.append(
            LabelerSpec(
                key="idle-%02d" % index,
                display_name="Idle Labeler %02d" % index,
                values=("unused-%02d" % index,),
                trigger=TRIGGER_RANDOM,
                trigger_probability=0.0,
                reaction=_manual(10_000.0),
                start_us=COMMUNITY_LABELERS_OPEN_US,
                operator_known=False,
                hosting=(
                    HostingClass.RESIDENTIAL if rng.random() < 0.15 else HostingClass.CLOUD
                ),
            )
        )
    for index in range(16):  # announced, endpoint never worked (62 - 46)
        specs.append(
            LabelerSpec(
                key="broken-%02d" % index,
                display_name="Broken Labeler %02d" % index,
                values=("never-%02d" % index,),
                trigger=TRIGGER_RANDOM,
                trigger_probability=0.0,
                reaction=_manual(10_000.0),
                start_us=COMMUNITY_LABELERS_OPEN_US,
                functional=False,
                operator_known=False,
            )
        )

    # Pin the hosting mix to the paper's Section 6.1 numbers: of the 46
    # functional labelers, exactly 6 run from residential ISP addresses.
    residential_keys = {"furry-tags", "beans", "spam-ja", "vibes", "silent-01", "idle-03"}
    for spec in specs:
        if not spec.functional:
            continue
        spec.hosting = (
            HostingClass.RESIDENTIAL if spec.key in residential_keys else HostingClass.CLOUD
        )
    return specs


@dataclass
class LabelerRuntime:
    """A spec bound to its running service and account."""

    spec: LabelerSpec
    did: str = ""
    service: Optional[object] = None  # LabelerService
    endpoint: str = ""
    # For TRIGGER_RANDOM labelers: remaining labels to emit in the window.
    remaining_budget: float = 0.0
    values_emitted: set = field(default_factory=set)

"""Command-line entry point: ``python -m repro``.

Runs the full study at a chosen scale and prints every table and figure,
or a single artefact.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core import report
from repro.core.pipeline import run_study
from repro.simulation.config import SimulationConfig

ARTEFACTS = {
    "table1": report.render_table1,
    "fig1": report.render_fig1,
    "fig2": report.render_fig2,
    "fig3": report.render_fig3,
    "table2": report.render_table2,
    "fig4": report.render_fig4,
    "table3": report.render_table3,
    "table4": report.render_table4,
    "fig5": report.render_fig5,
    "fig6": report.render_fig6,
    "table6": report.render_table6,
    "fig7": report.render_fig7,
    "fig8": report.render_fig8,
    "fig9": report.render_fig9,
    "fig10": report.render_fig10,
    "fig11": report.render_fig11,
    "fig12": report.render_fig12,
    "health": report.render_collection_health,
    "integrity": report.render_integrity,
    "telemetry": report.render_telemetry,
    "slo": report.render_slo,
}


def _shard_urls(count: int = 4) -> tuple[str, ...]:
    return tuple("https://shard%02d.pds.bsky.network" % i for i in range(count))


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv[:1] == ["lint"]:
        # The analyzer has its own option surface; hand over before the
        # study parser can reject its flags.
        from repro.devtools.lint.cli import main as lint_main

        return lint_main(argv[1:])
    if argv[:1] == ["top"]:
        # The live dashboard likewise owns its options.
        from repro.obs.top import main as top_main

        return top_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce 'Looking AT the Blue Skies of Bluesky' (IMC 2024).",
        epilog="'python -m repro lint' runs the determinism & shard-safety "
        "static analyzer; 'python -m repro top' is the live study "
        "dashboard (each has its own --help).",
    )
    parser.add_argument(
        "artefact",
        nargs="?",
        default="all",
        choices=["all", "table5", "bench"] + sorted(ARTEFACTS),
        help="which table/figure to print, or 'bench' to run the "
        "commit-pipeline performance harness (default: all)",
    )
    parser.add_argument(
        "--bench-out",
        default="BENCH_perf.json",
        metavar="PATH",
        help="output file for the 'bench' artefact (default: BENCH_perf.json)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=20000,
        metavar="DENOM",
        help="population scale denominator; users = 5.52M / DENOM (default 20000)",
    )
    parser.add_argument("--feed-scale", type=float, default=800, metavar="DENOM")
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the simulation engine (default 1 = "
        "in-process); the population is partitioned into fixed logical "
        "shards merged deterministically at the relay, so every artefact "
        "is byte-identical at any worker count",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="run with deterministic fault injection: a seeded, recoverable "
        "plan of relay outages, transient errors, and firehose disconnects "
        "over the collection window (see the 'health' artefact)",
    )
    parser.add_argument(
        "--worker-fault-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="inject seeded shard-worker process faults (SIGKILL, hangs, "
        "slowdowns) into a --workers N run; the supervisor detects them via "
        "heartbeat deadlines and recovers by restart-and-replay, keeping "
        "every artefact byte-identical to a fault-free run",
    )
    parser.add_argument(
        "--adversary-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="run with seeded Byzantine hosts: poisoned PDS shards serving "
        "corrupted CARs and lying DID documents, a relay garbling firehose "
        "frames, and forged handle answers (see the 'integrity' artefact)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="journal study progress to DIR (atomic write-then-rename); "
        "required for --resume and --crash-seed",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="restore a checkpoint from --checkpoint-dir and continue; the "
        "finished study's artefacts are byte-identical to an uninterrupted "
        "run of the same seed",
    )
    parser.add_argument(
        "--crash-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="kill the study at a seeded progress point (testing the "
        "checkpoint/resume path); rerun with --resume to continue",
    )
    parser.add_argument("--quiet", action="store_true", help="suppress progress output")
    parser.add_argument(
        "--export",
        metavar="DIR",
        help="also write every artefact's underlying data as CSV/JSON",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the study's metrics registry snapshot (deterministic "
        "JSON; see the 'telemetry' artefact) to PATH, plus an OpenMetrics "
        "text rendering of the same registry next to it (.prom)",
    )
    parser.add_argument(
        "--slo-out",
        metavar="PATH",
        help="write the tail-latency SLO evaluation (deterministic JSON; "
        "see the 'slo' artefact) to PATH",
    )
    parser.add_argument(
        "--events-out",
        metavar="PATH",
        help="write the structured study event log (JSONL: phase "
        "transitions, fault injections, quarantines, supervisor "
        "recoveries; dual virtual+wall clocks) to PATH",
    )
    parser.add_argument(
        "--flight-dir",
        metavar="DIR",
        help="with --workers N: dump a crash flight recorder "
        "(flight-w<idx>.json, the worker's last protocol steps) into DIR "
        "whenever the supervisor recovers a crashed or hung shard worker",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="record spans and write a Chrome trace_event JSON file to "
        "PATH (open in chrome://tracing or https://ui.perfetto.dev)",
    )
    parser.add_argument(
        "--trace-sample",
        type=int,
        default=16,
        metavar="N",
        help="record 1-in-N spans for high-frequency categories like "
        "per-XRPC-call spans (default 16; 1 = record everything)",
    )
    parser.add_argument(
        "--no-telemetry",
        action="store_true",
        help="disable the metrics registry and tracer entirely (benchmark "
        "baseline; incompatible with --metrics-out/--trace-out)",
    )
    args = parser.parse_args(argv)

    if args.no_telemetry and (
        args.metrics_out or args.trace_out or args.slo_out or args.events_out
    ):
        parser.error(
            "--no-telemetry is incompatible with "
            "--metrics-out/--trace-out/--slo-out/--events-out"
        )

    config = SimulationConfig(
        seed=args.seed, scale=1 / args.scale, feed_scale=1 / args.feed_scale
    )
    if args.artefact == "table5":
        print(report.render_table5())
        return 0
    if args.artefact == "bench":
        from repro.bench import main as bench_main

        return bench_main(out_path=args.bench_out, quiet=args.quiet)
    progress = None if args.quiet else (lambda msg: print("  " + msg, file=sys.stderr))
    if not args.quiet:
        print(
            "simulating %d users / %d feeds / %d labelers..."
            % (config.n_users, config.n_feed_generators, config.n_labelers),
            file=sys.stderr,
        )
    fault_plan = None
    if args.fault_seed is not None:
        from repro.netsim.faults import FaultPlan
        from repro.simulation.config import (
            FIREHOSE_COLLECT_END_US,
            FIREHOSE_COLLECT_START_US,
        )

        fault_plan = FaultPlan.recoverable(
            args.fault_seed, FIREHOSE_COLLECT_START_US, FIREHOSE_COLLECT_END_US
        )
    worker_fault_plan = None
    if args.worker_fault_seed is not None:
        if args.workers <= 1:
            print(
                "--worker-fault-seed has no effect with --workers 1 (no worker "
                "processes to fault); ignoring",
                file=sys.stderr,
            )
        else:
            from repro.netsim.faults import WorkerFaultPlan
            from repro.simulation.clock import US_PER_DAY

            n_days = max(1, (config.end_us - config.start_us) // US_PER_DAY)
            worker_fault_plan = WorkerFaultPlan.seeded(
                args.worker_fault_seed, workers=args.workers, n_days=n_days
            )
    adversarial_plan = None
    if args.adversary_seed is not None:
        from repro.netsim.faults import AdversarialPlan

        shards = _shard_urls()
        adversarial_plan = AdversarialPlan.poison(
            args.adversary_seed,
            pds_hosts=shards[:3],
            relay_url="https://bsky.network",
            decoy_pds=shards[3],
        )
    supervision = None
    if args.flight_dir is not None:
        if args.workers <= 1:
            print(
                "--flight-dir has no effect with --workers 1 (no worker "
                "processes to record); ignoring",
                file=sys.stderr,
            )
        else:
            from repro.simulation.workers import SupervisionPolicy

            supervision = SupervisionPolicy(flight_dir=args.flight_dir)
    crash_plan = None
    if args.crash_seed is not None:
        from repro.netsim.faults import CrashPlan

        if not args.checkpoint_dir:
            parser.error("--crash-seed requires --checkpoint-dir")
        crash_plan = CrashPlan.seeded(args.crash_seed)
    if args.resume and not args.checkpoint_dir:
        parser.error("--resume requires --checkpoint-dir")
    from repro.obs.telemetry import Telemetry

    if args.no_telemetry:
        telemetry = Telemetry.disabled()
    else:
        telemetry = Telemetry(
            trace=args.trace_out is not None, trace_sample=args.trace_sample
        )
    started = time.time()
    try:
        _, datasets = run_study(
            config,
            progress=progress,
            fault_plan=fault_plan,
            adversarial_plan=adversarial_plan,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
            crash_plan=crash_plan,
            telemetry=telemetry,
            workers=args.workers,
            worker_fault_plan=worker_fault_plan,
            supervision=supervision,
        )
    except Exception as exc:
        from repro.netsim.faults import StudyCrashed

        if not isinstance(exc, StudyCrashed):
            raise
        print(
            "study crashed at tick %d (%s); rerun with --resume "
            "--checkpoint-dir %s to continue" % (exc.tick, exc.label, args.checkpoint_dir),
            file=sys.stderr,
        )
        return 3
    if not args.quiet:
        print("study ready in %.1fs" % (time.time() - started), file=sys.stderr)
    if args.artefact == "all":
        print(report.full_report(datasets))
    else:
        print(ARTEFACTS[args.artefact](datasets))
    if args.export:
        from repro.core.export import export_artefacts

        paths = export_artefacts(datasets, args.export)
        if not args.quiet:
            print("exported %d artefact files to %s" % (len(paths), args.export), file=sys.stderr)
    if args.metrics_out:
        from repro.core.atomicio import atomic_write_text

        atomic_write_text(args.metrics_out, telemetry.metrics_json())
        base = args.metrics_out
        if base.endswith(".json"):
            base = base[: -len(".json")]
        prom_path = base + ".prom"
        atomic_write_text(prom_path, telemetry.metrics_openmetrics())
        if not args.quiet:
            print(
                "wrote metrics snapshot to %s (OpenMetrics: %s)"
                % (args.metrics_out, prom_path),
                file=sys.stderr,
            )
    if args.slo_out:
        from repro.core.atomicio import atomic_write_text
        from repro.obs.slo import slo_json, study_window_days

        atomic_write_text(
            args.slo_out,
            slo_json(telemetry.metrics_snapshot(), window_days=study_window_days()),
        )
        if not args.quiet:
            print("wrote SLO evaluation to %s" % args.slo_out, file=sys.stderr)
    if args.events_out:
        from repro.core.atomicio import atomic_write_text

        atomic_write_text(args.events_out, telemetry.events_jsonl())
        if not args.quiet:
            print(
                "wrote %d study events to %s"
                % (telemetry.events.stats()["events"], args.events_out),
                file=sys.stderr,
            )
    if args.trace_out:
        from repro.core.atomicio import atomic_write_json

        atomic_write_json(args.trace_out, telemetry.tracer.export())
        if not args.quiet:
            stats = telemetry.tracer.stats()
            print(
                "wrote %d trace events to %s (open in chrome://tracing)"
                % (stats["events"], args.trace_out),
                file=sys.stderr,
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())

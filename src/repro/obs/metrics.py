"""The metrics registry: counters, gauges, fixed-bucket histograms.

Design constraints, in order:

* **Hot-path cost.**  ``ServiceDirectory.call`` and the firehose ingest
  loop increment on every event; an increment is one tuple key and one
  dict store, no string formatting, no allocation beyond the key.
* **Determinism.**  ``snapshot_json()`` is byte-identical for two runs
  of the same seed: series are keyed and sorted by (family, labels),
  and every persisted value derives from virtual time or counted items,
  never from the wall clock.  Wall-clock families are declared
  ``volatile`` and stay out of the snapshot (they still feed the
  human-readable telemetry report).
* **Crash-safety.**  ``state()`` / ``adopt()`` round-trip the registry
  through the study checkpoint journal.  Because the pipeline journals
  at action boundaries, a resumed run's non-volatile series end up
  equal to an uninterrupted run's — the same contract the datasets
  already honour.  Volatile families are process-local and reset on
  adopt.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from typing import Iterable, Optional

#: Default histogram bounds for injected/virtual latencies, in µs:
#: sub-millisecond up to the minute-scale backoff ceiling.
LATENCY_BUCKETS_US = (
    1_000,
    10_000,
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    15_000_000,
    60_000_000,
)


def series_key(name: str, label_names: tuple, labels: tuple) -> str:
    if not label_names:
        return name
    inner = ",".join("%s=%s" % pair for pair in zip(label_names, labels))
    return "%s{%s}" % (name, inner)


class _Family:
    """Shared bookkeeping for one named series family."""

    kind = ""

    def __init__(self, name: str, label_names: Iterable[str] = (), volatile: bool = False):
        self.name = name
        self.label_names = tuple(label_names)
        self.volatile = volatile
        self._data: dict = {}

    def clear(self) -> None:
        self._data.clear()

    def items(self):
        return self._data.items()

    def get(self, labels: tuple = ()):
        return self._data.get(labels, 0)

    def _check_labels(self, labels: tuple) -> tuple:
        if len(labels) != len(self.label_names):
            raise ValueError(
                "%s takes %d labels %r, got %r"
                % (self.name, len(self.label_names), self.label_names, labels)
            )
        return labels


class CounterFamily(_Family):
    kind = "counter"

    def inc(self, labels: tuple = (), amount: int = 1) -> None:
        data = self._data
        data[labels] = data.get(labels, 0) + amount

    def total(self):
        return sum(self._data.values())

    def sum_by(self, index: int) -> dict:
        """Aggregate the family over one label position."""
        out: dict = {}
        for labels, value in self._data.items():
            key = labels[index]
            out[key] = out.get(key, 0) + value
        return out


class GaugeFamily(_Family):
    kind = "gauge"

    def set(self, labels: tuple = (), value=0) -> None:
        self._data[labels] = value

    def total(self):
        return sum(self._data.values())


class HistogramFamily(_Family):
    """Fixed upper-bound buckets; one extra overflow bucket.

    Per-series storage is ``[bucket_counts, sum, count]`` so an observe
    is a bisect plus three in-place updates.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        label_names: Iterable[str] = (),
        bounds: tuple = LATENCY_BUCKETS_US,
        volatile: bool = False,
    ):
        super().__init__(name, label_names, volatile)
        self.bounds = tuple(bounds)

    def observe(self, labels: tuple = (), value=0) -> None:
        record = self._data.get(labels)
        if record is None:
            record = [[0] * (len(self.bounds) + 1), 0, 0]
            self._data[labels] = record
        record[0][bisect_right(self.bounds, value)] += 1
        record[1] += value
        record[2] += 1

    def count(self, labels: tuple = ()) -> int:
        record = self._data.get(labels)
        return record[2] if record is not None else 0

    def sum(self, labels: tuple = ()):
        record = self._data.get(labels)
        return record[1] if record is not None else 0

    def percentile(self, labels: tuple, q: float):
        """Bucket-resolution quantile estimate (upper bound of the
        bucket holding the q-th observation); None without data."""
        record = self._data.get(labels)
        if record is None or record[2] == 0:
            return None
        target = q * record[2]
        seen = 0
        for index, bucket_count in enumerate(record[0]):
            seen += bucket_count
            if seen >= target:
                if index < len(self.bounds):
                    return self.bounds[index]
                # Overflow bucket: the best bound we have is the mean of
                # what landed there, floored at the last finite bound.
                return max(self.bounds[-1], record[1] // max(1, record[2]))
        return self.bounds[-1]


class MetricsRegistry:
    """Named family store with idempotent creation and stable snapshots."""

    def __init__(self):
        self.families: dict[str, _Family] = {}

    # -- family creation (idempotent) ----------------------------------------

    def counter(self, name: str, label_names=(), volatile: bool = False) -> CounterFamily:
        return self._family(CounterFamily, name, label_names, volatile)

    def gauge(self, name: str, label_names=(), volatile: bool = False) -> GaugeFamily:
        return self._family(GaugeFamily, name, label_names, volatile)

    def histogram(
        self, name: str, label_names=(), bounds=LATENCY_BUCKETS_US, volatile: bool = False
    ) -> HistogramFamily:
        family = self.families.get(name)
        if family is None:
            family = HistogramFamily(name, label_names, bounds=bounds, volatile=volatile)
            self.families[name] = family
            return family
        self._check_existing(family, HistogramFamily, name, label_names)
        if family.bounds != tuple(bounds):
            raise ValueError("histogram %s re-declared with different bounds" % name)
        return family

    def _family(self, cls, name, label_names, volatile):
        family = self.families.get(name)
        if family is None:
            family = cls(name, label_names, volatile=volatile)
            self.families[name] = family
            return family
        self._check_existing(family, cls, name, label_names)
        return family

    @staticmethod
    def _check_existing(family, cls, name, label_names) -> None:
        if not isinstance(family, cls) or family.label_names != tuple(label_names):
            raise ValueError(
                "family %s already declared as %s%r"
                % (name, family.kind, family.label_names)
            )

    def family(self, name: str) -> Optional[_Family]:
        return self.families.get(name)

    # -- snapshot -------------------------------------------------------------

    def snapshot(self, include_volatile: bool = False) -> dict:
        """A deterministic, JSON-ready view of every non-volatile series."""
        counters: dict = {}
        gauges: dict = {}
        histograms: dict = {}
        for name in sorted(self.families):
            family = self.families[name]
            if family.volatile and not include_volatile:
                continue
            if isinstance(family, HistogramFamily):
                for labels in sorted(family._data, key=_label_sort_key):
                    record = family._data[labels]
                    histograms[series_key(name, family.label_names, labels)] = {
                        "le": list(family.bounds) + ["+Inf"],
                        "counts": list(record[0]),
                        "sum": record[1],
                        "count": record[2],
                    }
            else:
                target = counters if isinstance(family, CounterFamily) else gauges
                for labels in sorted(family._data, key=_label_sort_key):
                    target[series_key(name, family.label_names, labels)] = family._data[
                        labels
                    ]
        return {
            "schema": "repro-metrics-v1",
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def snapshot_json(self, include_volatile: bool = False) -> str:
        return (
            json.dumps(self.snapshot(include_volatile), indent=2, sort_keys=True) + "\n"
        )

    # -- checkpoint plumbing ---------------------------------------------------

    def state(self) -> dict:
        """Picklable registry contents (non-volatile families only)."""
        out = {}
        for name, family in self.families.items():
            if family.volatile:
                continue
            if isinstance(family, HistogramFamily):
                data = {
                    labels: [list(rec[0]), rec[1], rec[2]]
                    for labels, rec in family._data.items()
                }
            else:
                data = dict(family._data)
            out[name] = {
                "kind": family.kind,
                "label_names": family.label_names,
                "bounds": getattr(family, "bounds", None),
                "data": data,
            }
        return out

    def adopt(self, state: dict) -> None:
        """Load checkpointed contents in place.

        Families already handed out keep their object identity (the
        service directory and collectors hold direct references);
        volatile families reset — they are process-local by contract.
        """
        for family in self.families.values():
            family.clear()
        for name, entry in state.items():
            kind = entry["kind"]
            if kind == "histogram":
                family = self.histogram(
                    name, entry["label_names"], bounds=entry["bounds"]
                )
                family._data = {
                    labels: [list(rec[0]), rec[1], rec[2]]
                    for labels, rec in entry["data"].items()
                }
            else:
                maker = self.counter if kind == "counter" else self.gauge
                family = maker(name, entry["label_names"])
                family._data = dict(entry["data"])


def _label_sort_key(labels: tuple) -> tuple:
    return tuple(str(part) for part in labels)


# -- disabled variants --------------------------------------------------------


class _NullFamily:
    """Accepts every metrics call and records nothing."""

    kind = "null"
    name = "null"
    label_names = ()
    volatile = True
    bounds = ()

    def inc(self, labels=(), amount=1):
        pass

    def set(self, labels=(), value=0):
        pass

    def observe(self, labels=(), value=0):
        pass

    def clear(self):
        pass

    def items(self):
        return ()

    def get(self, labels=()):
        return 0

    def total(self):
        return 0

    def sum_by(self, index):
        return {}

    def count(self, labels=()):
        return 0

    def sum(self, labels=()):
        return 0

    def percentile(self, labels, q):
        return None


_NULL_FAMILY = _NullFamily()


class NullRegistry(MetricsRegistry):
    """The ``--no-telemetry`` registry: every family is a shared no-op."""

    def counter(self, name, label_names=(), volatile=False):
        return _NULL_FAMILY

    def gauge(self, name, label_names=(), volatile=False):
        return _NULL_FAMILY

    def histogram(self, name, label_names=(), bounds=LATENCY_BUCKETS_US, volatile=False):
        return _NULL_FAMILY

    def family(self, name):
        return None

    def state(self) -> dict:
        return {}

    def adopt(self, state: dict) -> None:
        pass


# -- read-path cache families --------------------------------------------------

#: Family names shared by every read-path cache (AppView hydrated views,
#: relay CAR/block cache, feed-generator skeleton cache).  One label —
#: the cache name — so ``metrics.json`` carries a deterministic hit/miss
#: row per cache and a new cache never mints a new family.
READ_CACHE_HITS = "read_cache_hits_total"
READ_CACHE_MISSES = "read_cache_misses_total"


def read_cache_counters(registry: MetricsRegistry) -> "tuple[CounterFamily, CounterFamily]":
    """The (hits, misses) counter pair for read-path caches.

    Counted only inside journaled pipeline actions (collector crawls), so
    the totals survive crash/resume via the checkpoint's registry state;
    cache *warmth* is flushed at every action boundary (see
    ``MeasurementPipeline``) which keeps the counts resume-invariant.
    """
    return (
        registry.counter(READ_CACHE_HITS, ("cache",)),
        registry.counter(READ_CACHE_MISSES, ("cache",)),
    )

"""The metrics registry: counters, gauges, fixed-bucket histograms.

Design constraints, in order:

* **Hot-path cost.**  ``ServiceDirectory.call`` and the firehose ingest
  loop increment on every event; an increment is one tuple key and one
  dict store, no string formatting, no allocation beyond the key.
* **Determinism.**  ``snapshot_json()`` is byte-identical for two runs
  of the same seed: series are keyed and sorted by (family, labels),
  and every persisted value derives from virtual time or counted items,
  never from the wall clock.  Wall-clock families are declared
  ``volatile`` and stay out of the snapshot (they still feed the
  human-readable telemetry report).
* **Crash-safety.**  ``state()`` / ``adopt()`` round-trip the registry
  through the study checkpoint journal.  Because the pipeline journals
  at action boundaries, a resumed run's non-volatile series end up
  equal to an uninterrupted run's — the same contract the datasets
  already honour.  Volatile families are process-local and reset on
  adopt.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from typing import Iterable, Optional

#: Default histogram bounds for injected/virtual latencies, in µs:
#: log-spaced (~1-2.5-5 per decade) from sub-millisecond through the
#: minute-scale backoff ceiling and into the multi-minute tail.  The
#: tail buckets exist so p999 is *resolvable*: with the old coarse
#: bounds every tail quantile collapsed into the same bucket and
#: p99 == p999 by construction (see ``repro.obs.slo``).
LATENCY_BUCKETS_US = (
    1_000,
    2_500,
    5_000,
    10_000,
    25_000,
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    2_500_000,
    5_000_000,
    10_000_000,
    25_000_000,
    60_000_000,
    150_000_000,
    300_000_000,
    600_000_000,
)


def series_key(name: str, label_names: tuple, labels: tuple) -> str:
    if not label_names:
        return name
    inner = ",".join("%s=%s" % pair for pair in zip(label_names, labels))
    return "%s{%s}" % (name, inner)


class _Family:
    """Shared bookkeeping for one named series family."""

    kind = ""

    def __init__(self, name: str, label_names: Iterable[str] = (), volatile: bool = False):
        self.name = name
        self.label_names = tuple(label_names)
        self.volatile = volatile
        self._data: dict = {}

    def clear(self) -> None:
        self._data.clear()

    def items(self):
        return self._data.items()

    def get(self, labels: tuple = ()):
        return self._data.get(labels, 0)

    def _check_labels(self, labels: tuple) -> tuple:
        if len(labels) != len(self.label_names):
            raise ValueError(
                "%s takes %d labels %r, got %r"
                % (self.name, len(self.label_names), self.label_names, labels)
            )
        return labels


class CounterFamily(_Family):
    kind = "counter"

    def inc(self, labels: tuple = (), amount: int = 1) -> None:
        data = self._data
        data[labels] = data.get(labels, 0) + amount

    def total(self):
        return sum(self._data.values())

    def sum_by(self, index: int) -> dict:
        """Aggregate the family over one label position."""
        out: dict = {}
        for labels, value in self._data.items():
            key = labels[index]
            out[key] = out.get(key, 0) + value
        return out


class GaugeFamily(_Family):
    kind = "gauge"

    def set(self, labels: tuple = (), value=0) -> None:
        self._data[labels] = value

    def total(self):
        return sum(self._data.values())


class HistogramFamily(_Family):
    """Fixed upper-bound buckets; one extra overflow bucket.

    Per-series storage is ``[bucket_counts, sum, count, overflow_sum]``
    so an observe is a bisect plus in-place updates.  ``overflow_sum``
    tracks only the observations that landed past ``bounds[-1]``, so the
    overflow quantile estimate is the mean of the *overflow* population,
    not the mean of everything (the global mean is dragged down by the
    finite buckets and produced tail estimates below the last bound).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        label_names: Iterable[str] = (),
        bounds: tuple = LATENCY_BUCKETS_US,
        volatile: bool = False,
    ):
        super().__init__(name, label_names, volatile)
        self.bounds = tuple(bounds)

    def observe(self, labels: tuple = (), value=0) -> None:
        record = self._data.get(labels)
        if record is None:
            record = [[0] * (len(self.bounds) + 1), 0, 0, 0]
            self._data[labels] = record
        index = bisect_right(self.bounds, value)
        record[0][index] += 1
        record[1] += value
        record[2] += 1
        if index == len(self.bounds):
            record[3] += value

    def count(self, labels: tuple = ()) -> int:
        record = self._data.get(labels)
        return record[2] if record is not None else 0

    def sum(self, labels: tuple = ()):
        record = self._data.get(labels)
        return record[1] if record is not None else 0

    def percentile(self, labels: tuple, q: float):
        """Bucket-resolution quantile estimate; None without data.

        For a quantile landing in a finite bucket the estimate is that
        bucket's upper bound, so the error is bounded by the bucket
        width: the true quantile lies in ``(bounds[i-1], bounds[i]]``
        and the estimate never undershoots it.  For the overflow bucket
        the estimate is the mean of the overflow observations clamped to
        ``max(bounds[-1], overflow_mean)``.  Both halves are constant
        within a bucket and cumulative across buckets, so the estimate
        is monotone non-decreasing in ``q`` — the property the SLO
        report relies on (p50 <= p95 <= p99 <= p999).
        """
        record = self._data.get(labels)
        if record is None or record[2] == 0:
            return None
        return percentile_from_record(
            self.bounds, record[0], record[2], record[3], q
        )


def percentile_from_record(bounds, counts, count: int, overflow_sum, q: float):
    """Shared bucket-walk quantile estimate (see ``HistogramFamily.percentile``).

    Module-level so the SLO evaluator and the live dashboard can compute
    the same estimate from a *snapshot* dict (``le``/``counts``/``count``/
    ``overflow_sum``) without holding the family object.
    """
    if not count:
        return None
    target = q * count
    seen = 0
    last = len(bounds)
    for index, bucket_count in enumerate(counts):
        seen += bucket_count
        if seen >= target and bucket_count:
            if index < last:
                return bounds[index]
            # Overflow bucket: the mean of the overflow population,
            # clamped so the tail estimate never dips below the last
            # finite bound (which the cumulative walk already crossed).
            return max(bounds[-1], int(overflow_sum) // max(1, counts[-1]))
    # q above 1.0 (or float slack at exactly 1.0): the max-ish estimate.
    if counts[-1]:
        return max(bounds[-1], int(overflow_sum) // max(1, counts[-1]))
    return bounds[-1]


class MetricsRegistry:
    """Named family store with idempotent creation and stable snapshots."""

    def __init__(self):
        self.families: dict[str, _Family] = {}

    # -- family creation (idempotent) ----------------------------------------

    def counter(self, name: str, label_names=(), volatile: bool = False) -> CounterFamily:
        return self._family(CounterFamily, name, label_names, volatile)

    def gauge(self, name: str, label_names=(), volatile: bool = False) -> GaugeFamily:
        return self._family(GaugeFamily, name, label_names, volatile)

    def histogram(
        self, name: str, label_names=(), bounds=LATENCY_BUCKETS_US, volatile: bool = False
    ) -> HistogramFamily:
        family = self.families.get(name)
        if family is None:
            family = HistogramFamily(name, label_names, bounds=bounds, volatile=volatile)
            self.families[name] = family
            return family
        self._check_existing(family, HistogramFamily, name, label_names)
        if family.bounds != tuple(bounds):
            raise ValueError("histogram %s re-declared with different bounds" % name)
        return family

    def _family(self, cls, name, label_names, volatile):
        family = self.families.get(name)
        if family is None:
            family = cls(name, label_names, volatile=volatile)
            self.families[name] = family
            return family
        self._check_existing(family, cls, name, label_names)
        return family

    @staticmethod
    def _check_existing(family, cls, name, label_names) -> None:
        if not isinstance(family, cls) or family.label_names != tuple(label_names):
            raise ValueError(
                "family %s already declared as %s%r"
                % (name, family.kind, family.label_names)
            )

    def family(self, name: str) -> Optional[_Family]:
        return self.families.get(name)

    # -- snapshot -------------------------------------------------------------

    def snapshot(self, include_volatile: bool = False) -> dict:
        """A deterministic, JSON-ready view of every non-volatile series."""
        counters: dict = {}
        gauges: dict = {}
        histograms: dict = {}
        for name in sorted(self.families):
            family = self.families[name]
            if family.volatile and not include_volatile:
                continue
            if isinstance(family, HistogramFamily):
                for labels in sorted(family._data, key=_label_sort_key):
                    record = family._data[labels]
                    histograms[series_key(name, family.label_names, labels)] = {
                        "le": list(family.bounds) + ["+Inf"],
                        "counts": list(record[0]),
                        "sum": record[1],
                        "count": record[2],
                        "overflow_sum": record[3],
                    }
            else:
                target = counters if isinstance(family, CounterFamily) else gauges
                for labels in sorted(family._data, key=_label_sort_key):
                    target[series_key(name, family.label_names, labels)] = family._data[
                        labels
                    ]
        return {
            "schema": "repro-metrics-v1",
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def snapshot_json(self, include_volatile: bool = False) -> str:
        return (
            json.dumps(self.snapshot(include_volatile), indent=2, sort_keys=True) + "\n"
        )

    # -- OpenMetrics text exposition ------------------------------------------

    def render_openmetrics(self, include_volatile: bool = False) -> str:
        """The registry as OpenMetrics text (``metrics.prom``).

        Deterministic by the same construction as :meth:`snapshot`:
        families are visited in sorted name order, series in sorted
        label order, and volatile families stay out — so the rendering
        is byte-identical across worker counts, hash seeds, and
        crash/resume chains.  Counters follow the spec's naming rule
        (the ``_total`` suffix belongs to the sample, not the family);
        histograms render cumulative ``_bucket`` series plus ``_sum``
        and ``_count``; the document ends with the mandatory ``# EOF``.
        """
        lines: list[str] = []
        for name in sorted(self.families):
            family = self.families[name]
            if (family.volatile and not include_volatile) or not family._data:
                continue
            if isinstance(family, HistogramFamily):
                lines.append("# TYPE %s histogram" % name)
                for labels in sorted(family._data, key=_label_sort_key):
                    record = family._data[labels]
                    cumulative = 0
                    for bound, bucket_count in zip(
                        list(family.bounds) + ["+Inf"], record[0]
                    ):
                        cumulative += bucket_count
                        lines.append(
                            "%s_bucket{%s} %d"
                            % (
                                name,
                                _openmetrics_labels(
                                    family.label_names, labels, ("le", str(bound))
                                ),
                                cumulative,
                            )
                        )
                    series = _openmetrics_labels(family.label_names, labels)
                    suffix = "{%s}" % series if series else ""
                    lines.append("%s_sum%s %s" % (name, suffix, _om_number(record[1])))
                    lines.append("%s_count%s %d" % (name, suffix, record[2]))
                continue
            if isinstance(family, CounterFamily):
                base = name[:-6] if name.endswith("_total") else name
                sample = base + "_total"
                lines.append("# TYPE %s counter" % base)
            else:
                sample = name
                lines.append("# TYPE %s gauge" % name)
            for labels in sorted(family._data, key=_label_sort_key):
                series = _openmetrics_labels(family.label_names, labels)
                suffix = "{%s}" % series if series else ""
                lines.append(
                    "%s%s %s" % (sample, suffix, _om_number(family._data[labels]))
                )
        lines.append("# EOF")
        return "\n".join(lines) + "\n"

    # -- checkpoint plumbing ---------------------------------------------------

    def state(self) -> dict:
        """Picklable registry contents (non-volatile families only)."""
        out = {}
        for name, family in self.families.items():
            if family.volatile:
                continue
            if isinstance(family, HistogramFamily):
                data = {
                    labels: [list(rec[0]), rec[1], rec[2], rec[3]]
                    for labels, rec in family._data.items()
                }
            else:
                data = dict(family._data)
            out[name] = {
                "kind": family.kind,
                "label_names": family.label_names,
                "bounds": getattr(family, "bounds", None),
                "data": data,
            }
        return out

    def adopt(self, state: dict) -> None:
        """Load checkpointed contents in place.

        Families already handed out keep their object identity (the
        service directory and collectors hold direct references);
        volatile families reset — they are process-local by contract.
        """
        for family in self.families.values():
            family.clear()
        for name, entry in state.items():
            kind = entry["kind"]
            if kind == "histogram":
                family = self.histogram(
                    name, entry["label_names"], bounds=entry["bounds"]
                )
                family._data = {
                    # rec[3] defaults for states written before the
                    # overflow-sum slot existed (same-version journals
                    # only carry 4-element records).
                    labels: [list(rec[0]), rec[1], rec[2], rec[3] if len(rec) > 3 else 0]
                    for labels, rec in entry["data"].items()
                }
            else:
                maker = self.counter if kind == "counter" else self.gauge
                family = maker(name, entry["label_names"])
                family._data = dict(entry["data"])


def _label_sort_key(labels: tuple) -> tuple:
    return tuple(str(part) for part in labels)


def _om_escape(value) -> str:
    """OpenMetrics label-value escaping (backslash, quote, newline)."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _openmetrics_labels(label_names: tuple, labels: tuple, extra=None) -> str:
    pairs = ['%s="%s"' % (name, _om_escape(value)) for name, value in zip(label_names, labels)]
    if extra is not None:
        pairs.append('%s="%s"' % (extra[0], _om_escape(extra[1])))
    return ",".join(pairs)


def _om_number(value) -> str:
    """Exposition-format number: ints verbatim, floats via repr.

    ``repr`` is exact and platform-independent for Python floats, so the
    rendering stays byte-identical wherever the snapshot is.
    """
    if isinstance(value, bool):  # bools are ints; be explicit anyway
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


# -- disabled variants --------------------------------------------------------


class _NullFamily:
    """Accepts every metrics call and records nothing."""

    kind = "null"
    name = "null"
    label_names = ()
    volatile = True
    bounds = ()

    def inc(self, labels=(), amount=1):
        pass

    def set(self, labels=(), value=0):
        pass

    def observe(self, labels=(), value=0):
        pass

    def clear(self):
        pass

    def items(self):
        return ()

    def get(self, labels=()):
        return 0

    def total(self):
        return 0

    def sum_by(self, index):
        return {}

    def count(self, labels=()):
        return 0

    def sum(self, labels=()):
        return 0

    def percentile(self, labels, q):
        return None


_NULL_FAMILY = _NullFamily()


class NullRegistry(MetricsRegistry):
    """The ``--no-telemetry`` registry: every family is a shared no-op."""

    def counter(self, name, label_names=(), volatile=False):
        return _NULL_FAMILY

    def gauge(self, name, label_names=(), volatile=False):
        return _NULL_FAMILY

    def histogram(self, name, label_names=(), bounds=LATENCY_BUCKETS_US, volatile=False):
        return _NULL_FAMILY

    def family(self, name):
        return None

    def state(self) -> dict:
        return {}

    def adopt(self, state: dict) -> None:
        pass

    def render_openmetrics(self, include_volatile: bool = False) -> str:
        return "# EOF\n"


# -- read-path cache families --------------------------------------------------

#: Family names shared by every read-path cache (AppView hydrated views,
#: relay CAR/block cache, feed-generator skeleton cache).  One label —
#: the cache name — so ``metrics.json`` carries a deterministic hit/miss
#: row per cache and a new cache never mints a new family.
READ_CACHE_HITS = "read_cache_hits_total"
READ_CACHE_MISSES = "read_cache_misses_total"


def read_cache_counters(registry: MetricsRegistry) -> "tuple[CounterFamily, CounterFamily]":
    """The (hits, misses) counter pair for read-path caches.

    Counted only inside journaled pipeline actions (collector crawls), so
    the totals survive crash/resume via the checkpoint's registry state;
    cache *warmth* is flushed at every action boundary (see
    ``MeasurementPipeline``) which keeps the counts resume-invariant.
    """
    return (
        registry.counter(READ_CACHE_HITS, ("cache",)),
        registry.counter(READ_CACHE_MISSES, ("cache",)),
    )

"""Deterministic structured event log (``events.jsonl``).

The registry answers "how much"; the event log answers "what happened,
in order": phase transitions, fault injections, quarantines, cache
flushes, supervisor recoveries.  Every event carries *both* study
clocks — ``virtual_us`` (deterministic, the simulated timeline) and
``wall_us`` (process-local, forensic) — plus a ``span`` correlation id
shared with the tracer, so a span in ``trace.json`` and its events in
``events.jsonl`` can be joined.

Determinism contract (mirrors the metrics registry):

* **Non-volatile events** are appended in a deterministic order, carry
  deterministic ``seq``/``virtual_us``/``kind``/``span``/``fields``,
  and ride the checkpoint journal via :meth:`EventLog.state` /
  :meth:`EventLog.adopt` — a crash/resume chain reproduces the exact
  event stream of an uninterrupted run.  Only ``wall_us`` differs
  between two processes (it is a dual clock by design; strip it to
  compare logs byte-for-byte).
* **Volatile events** (supervisor restarts, checkpoint saves — anything
  whose *occurrence* depends on worker count or crash timing) are
  flagged ``"volatile": true``, numbered in their own sequence space,
  never checkpointed, and excluded from artefact fingerprints.

The one subtlety is the simulation phase: it re-executes from scratch
in every resumed process (see ``Telemetry.reset_phase``), so its
``phase.start``/``phase.end`` events adopted from the journal would be
re-emitted by the replay.  :meth:`suppress_phase` arms one-shot
suppression for exactly the transitions the journal already holds.
"""

from __future__ import annotations

import json
import time
from typing import Iterable, Optional

EVENTS_SCHEMA = "repro-events-v1"

#: Event-count ceiling; emissions past it are counted, never silent.
DEFAULT_MAX_EVENTS = 200_000

#: The keys every event object carries, in serialization order.
_EVENT_KEYS = ("seq", "virtual_us", "wall_us", "kind", "span", "fields")

#: Kinds the pipeline emits; the validator accepts any non-empty kind,
#: this list is documentation plus the dashboard's grouping order.
KNOWN_KINDS = (
    "phase.start",
    "phase.end",
    "fault.injected",
    "integrity.quarantine",
    "cache.flush",
    "checkpoint.save",
    "supervisor.hang",
    "supervisor.restart",
    "supervisor.fallback",
    "flight.dump",
)


class EventLog:
    """Append-only dual-clock event recorder with checkpoint plumbing."""

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS):
        self.max_events = max_events
        self.events: list[dict] = []
        self.dropped = 0
        self._seq = 0  # deterministic sequence (checkpointed)
        self._volatile_seq = 0  # process-local sequence (never checkpointed)
        self._wall0 = time.perf_counter()
        # Phase names whose next start/end emission must be swallowed
        # because the journal already holds the transition (replay dedup).
        self._suppress_starts: dict[str, int] = {}
        self._suppress_ends: dict[str, int] = {}

    # -- clocks ---------------------------------------------------------------

    def wall_us(self) -> float:
        return round((time.perf_counter() - self._wall0) * 1e6, 3)

    # -- recording ------------------------------------------------------------

    def emit(
        self,
        kind: str,
        virtual_us: int,
        fields: Optional[dict] = None,
        span: Optional[str] = None,
        volatile: bool = False,
    ) -> Optional[dict]:
        """Record one event; returns it (or None when capped/suppressed)."""
        if kind == "phase.start" or kind == "phase.end":
            name = (fields or {}).get("phase")
            pool = self._suppress_starts if kind == "phase.start" else self._suppress_ends
            remaining = pool.get(name, 0)
            if remaining:
                pool[name] = remaining - 1
                return None
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return None
        if volatile:
            self._volatile_seq += 1
            seq = self._volatile_seq
        else:
            self._seq += 1
            seq = self._seq
        event = {
            "seq": seq,
            "virtual_us": int(virtual_us),
            "wall_us": self.wall_us(),
            "kind": kind,
            "span": span,
            "fields": dict(fields) if fields else {},
        }
        if volatile:
            event["volatile"] = True
        self.events.append(event)
        return event

    def phase_span(self, name: str) -> str:
        """The correlation id for the phase occurrence about to start.

        Minted from the *occurrence number* (how many times this phase
        has started), not the event sequence, so a resumed run — whose
        re-emitted ``phase.start`` is suppressed — computes the same id
        the journaled start already carries, and the replayed
        ``phase.end`` joins the right span.
        """
        starts = 0
        for event in self.events:
            if (
                not event.get("volatile")
                and event["kind"] == "phase.start"
                and event["fields"].get("phase") == name
            ):
                starts += 1
        pending = self._suppress_starts.get(name, 0)
        return "phase:%s#%d" % (name, starts + 1 - pending)

    # -- replay dedup ---------------------------------------------------------

    def suppress_phase(self, name: str) -> None:
        """Arm one-shot suppression for a phase the replay will re-emit.

        Scans the adopted log: an unmatched ``phase.start`` for ``name``
        means the journal was written mid-phase (suppress only the start
        the redo emits); a matched pair means the phase completed before
        the crash (suppress both).  Counters are per-occurrence so
        multi-crash chains stay exact.
        """
        starts = ends = 0
        for event in self.events:
            if event.get("volatile"):
                continue
            if event["fields"].get("phase") != name:
                continue
            if event["kind"] == "phase.start":
                starts += 1
            elif event["kind"] == "phase.end":
                ends += 1
        if starts:
            self._suppress_starts[name] = starts
        if ends:
            self._suppress_ends[name] = ends

    # -- checkpoint plumbing ---------------------------------------------------

    def state(self) -> dict:
        """Picklable contents: the non-volatile stream only."""
        return {
            "seq": self._seq,
            "events": [e for e in self.events if not e.get("volatile")],
        }

    def adopt(self, state: Optional[dict]) -> None:
        if not state:
            return
        self._seq = state.get("seq", 0)
        self.events = [dict(e) for e in state.get("events", ())]

    # -- export ---------------------------------------------------------------

    def to_jsonl(self, include_volatile: bool = True) -> str:
        """One JSON object per line, keys in fixed order.

        Volatile events are included by default (the file is a forensic
        record, not a fingerprint input); pass ``include_volatile=False``
        for the strictly deterministic stream.
        """
        lines = []
        for event in self.events:
            if event.get("volatile") and not include_volatile:
                continue
            ordered = {key: event[key] for key in _EVENT_KEYS}
            ordered["fields"] = dict(sorted(event["fields"].items()))
            if event.get("volatile"):
                ordered["volatile"] = True
            lines.append(json.dumps(ordered, sort_keys=False, separators=(",", ":")))
        return "\n".join(lines) + ("\n" if lines else "")

    def stats(self) -> dict:
        return {
            "events": len(self.events),
            "dropped": self.dropped,
            "deterministic_seq": self._seq,
        }


class NullEventLog:
    """Event log off (``--no-telemetry``): every call is a cheap no-op."""

    events: list = []
    dropped = 0
    max_events = 0

    def wall_us(self) -> float:
        return 0.0

    def emit(self, kind, virtual_us, fields=None, span=None, volatile=False):
        return None

    def phase_span(self, name) -> str:
        return "phase:%s#0" % name

    def suppress_phase(self, name) -> None:
        pass

    def state(self) -> dict:
        return {}

    def adopt(self, state) -> None:
        pass

    def to_jsonl(self, include_volatile: bool = True) -> str:
        return ""

    def stats(self) -> dict:
        return {"events": 0, "dropped": 0, "deterministic_seq": 0}


# ---------------------------------------------------------------------------
# JSONL schema validation (scripts/check_trace.py, scripts/check_slo.py)
# ---------------------------------------------------------------------------


def validate_events_lines(lines: Iterable[str]) -> list[str]:
    """Schema-check an ``events.jsonl`` document; returns problems.

    Enforced: every line is a JSON object with exactly the event keys,
    typed correctly; ``seq`` strictly increases within each of the two
    sequence spaces (deterministic and volatile); spans are null or
    non-empty strings.  ``seq`` is the ordering invariant — ``virtual_us``
    is *not* monotone across the stream, because collectors run at their
    own scheduled virtual instants (the final labeler pull is stamped at
    the label-snapshot time even though it executes after later feed
    sweeps).
    """
    problems: list[str] = []
    last_det_seq = 0
    last_vol_seq = 0
    count = 0
    for lineno, raw in enumerate(lines, start=1):
        raw = raw.strip()
        if not raw:
            continue
        count += 1
        try:
            event = json.loads(raw)
        except ValueError:
            problems.append("line %d is not valid JSON" % lineno)
            continue
        if not isinstance(event, dict):
            problems.append("line %d is not an object" % lineno)
            continue
        missing = [key for key in _EVENT_KEYS if key not in event]
        if missing:
            problems.append("line %d missing keys %r" % (lineno, missing))
            continue
        extra = set(event) - set(_EVENT_KEYS) - {"volatile"}
        if extra:
            problems.append("line %d has unknown keys %r" % (lineno, sorted(extra)))
        if not isinstance(event["kind"], str) or not event["kind"]:
            problems.append("line %d has bad kind %r" % (lineno, event.get("kind")))
        if not isinstance(event["seq"], int) or event["seq"] < 1:
            problems.append("line %d has bad seq %r" % (lineno, event.get("seq")))
            continue
        if not isinstance(event["virtual_us"], int) or event["virtual_us"] < 0:
            problems.append(
                "line %d has bad virtual_us %r" % (lineno, event.get("virtual_us"))
            )
            continue
        wall = event["wall_us"]
        if not isinstance(wall, (int, float)) or wall < 0:
            problems.append("line %d has bad wall_us %r" % (lineno, wall))
        span = event["span"]
        if span is not None and (not isinstance(span, str) or not span):
            problems.append("line %d has bad span %r" % (lineno, span))
        if not isinstance(event["fields"], dict):
            problems.append("line %d has non-object fields" % lineno)
        if event.get("volatile"):
            if event["seq"] <= last_vol_seq:
                problems.append(
                    "line %d volatile seq %d not increasing (last %d)"
                    % (lineno, event["seq"], last_vol_seq)
                )
            last_vol_seq = event["seq"]
        else:
            if event["seq"] <= last_det_seq:
                problems.append(
                    "line %d seq %d not increasing (last %d)"
                    % (lineno, event["seq"], last_det_seq)
                )
            last_det_seq = event["seq"]
    if not count:
        problems.append("event log is empty")
    return problems

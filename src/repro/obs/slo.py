"""SLO evaluation: tail-latency objectives over the metrics snapshot.

The paper's crawl only works if the simulated services sustain
throughput, so the study states *objectives* — "p99 of
``com.atproto.sync.getRepo`` under 5 virtual seconds", "error budget
0.1%" — and this module grades a finished (or in-flight) run against
them.  Everything is computed from the deterministic registry snapshot
(``repro-metrics-v1``), so ``slo.json`` inherits byte-identity across
worker counts, hash seeds, and crash/resume for free: same snapshot in,
same bytes out.

Objectives are declared in seeded *bundles* (mirroring how
``simulation.config`` seeds the workload): a named, frozen set of
:class:`SloObjective` rows.  ``default`` matches the study's injected
fault-model envelope; ``strict`` is the same shape with production-ish
targets that a faulted run is expected to breach — useful for testing
the burn arithmetic.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

from repro.obs.metrics import percentile_from_record

SLO_SCHEMA = "repro-slo-v1"

#: Quantiles the report always materialises, in rendering order.
QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99), ("p999", 0.999))

#: Snapshot families the evaluator reads.
METHOD_LATENCY_FAMILY = "xrpc_method_latency_us"
HOST_LATENCY_FAMILY = "xrpc_latency_us"
CALLS_FAMILY = "xrpc_calls_total"

OUTCOME_OK = "ok"

#: Outcomes that do not consume error budget: probing an announced-but-
#: unreachable host is the *study design* (the paper finds 26% of
#: Labelers and ~7% of Feed Generators dead), not a service failure.
#: Injected faults and status errors are what the budget meters.
EXPECTED_OUTCOMES = frozenset((OUTCOME_OK, "unknown-host", "host-down"))


@dataclass(frozen=True)
class SloObjective:
    """One graded objective: a latency ceiling plus an error budget."""

    name: str
    scope: str  # "method" | "host"
    match: str  # exact NSID / host, or "*" for the aggregate
    quantile: str  # one of the QUANTILES keys
    threshold_us: int
    error_budget: float  # tolerated error fraction of calls, e.g. 0.001


@dataclass(frozen=True)
class SloBundle:
    name: str
    objectives: tuple


def default_bundle() -> SloBundle:
    """The study envelope: generous enough that a healthy seeded run
    passes, tight enough that a pathological tail would not."""
    return SloBundle(
        name="default",
        objectives=(
            SloObjective(
                name="xrpc-aggregate-p99",
                scope="host",
                match="*",
                quantile="p99",
                threshold_us=60_000_000,
                error_budget=0.05,
            ),
            SloObjective(
                name="xrpc-aggregate-p999",
                scope="host",
                match="*",
                quantile="p999",
                threshold_us=300_000_000,
                error_budget=0.05,
            ),
            SloObjective(
                name="sync-get-repo-p99",
                scope="method",
                match="com.atproto.sync.getRepo",
                quantile="p99",
                threshold_us=60_000_000,
                error_budget=0.05,
            ),
        ),
    )


def strict_bundle() -> SloBundle:
    """Production-shaped targets; a faulted study run breaches these,
    which is what the burn-rate tests exercise."""
    return SloBundle(
        name="strict",
        objectives=(
            SloObjective(
                name="xrpc-aggregate-p99",
                scope="host",
                match="*",
                quantile="p99",
                threshold_us=1_000_000,
                error_budget=0.001,
            ),
            SloObjective(
                name="xrpc-aggregate-p999",
                scope="host",
                match="*",
                quantile="p999",
                threshold_us=5_000_000,
                error_budget=0.001,
            ),
        ),
    )


BUNDLES = {
    "default": default_bundle,
    "strict": strict_bundle,
}


def parse_series_key(key: str) -> tuple[str, dict]:
    """Split a snapshot series key ``name{k=v,...}`` into (name, labels).

    Inverse of ``metrics.series_key`` for the label alphabets the study
    uses (hosts, NSIDs, outcome slugs — no commas or braces in values).
    """
    brace = key.find("{")
    if brace < 0:
        return key, {}
    name = key[:brace]
    labels: dict = {}
    for pair in key[brace + 1 : -1].split(","):
        label, _, value = pair.partition("=")
        labels[label] = value
    return name, labels


def _histogram_series(snapshot: dict, family: str, label: str) -> dict:
    """{label_value: histogram_entry} for one family, plus a summed "*"."""
    out: dict = {}
    merged_counts: Optional[list] = None
    merged = {"sum": 0, "count": 0, "overflow_sum": 0}
    bounds: Optional[list] = None
    for key, entry in snapshot.get("histograms", {}).items():
        name, labels = parse_series_key(key)
        if name != family or label not in labels:
            continue
        out[labels[label]] = entry
        if merged_counts is None:
            merged_counts = list(entry["counts"])
            bounds = [b for b in entry["le"] if b != "+Inf"]
        else:
            for index, value in enumerate(entry["counts"]):
                merged_counts[index] += value
        merged["sum"] += entry["sum"]
        merged["count"] += entry["count"]
        merged["overflow_sum"] += entry.get("overflow_sum", 0)
    if merged_counts is not None:
        out["*"] = {
            "le": list(bounds) + ["+Inf"],
            "counts": merged_counts,
            "sum": merged["sum"],
            "count": merged["count"],
            "overflow_sum": merged["overflow_sum"],
        }
    return out


def _entry_percentiles(entry: dict) -> dict:
    bounds = tuple(b for b in entry["le"] if b != "+Inf")
    row = {"count": entry["count"]}
    for name, q in QUANTILES:
        row[name] = percentile_from_record(
            bounds, entry["counts"], entry["count"], entry.get("overflow_sum", 0), q
        )
    return row


def _call_tallies(snapshot: dict) -> tuple[dict, dict]:
    """(by_method, by_host) → {"calls": n, "errors": n} from the counters."""
    by_method: dict = {}
    by_host: dict = {}
    for key, value in snapshot.get("counters", {}).items():
        name, labels = parse_series_key(key)
        if name != CALLS_FAMILY:
            continue
        is_error = labels.get("outcome") not in EXPECTED_OUTCOMES
        for tally, label in ((by_method, "method"), (by_host, "host")):
            for bucket in (labels.get(label), "*"):
                if bucket is None:
                    continue
                row = tally.setdefault(bucket, {"calls": 0, "errors": 0})
                row["calls"] += value
                if is_error:
                    row["errors"] += value
    return by_method, by_host


def evaluate_slos(
    snapshot: dict, bundle: Optional[SloBundle] = None, window_days: float = 1.0
) -> dict:
    """Grade a registry snapshot against a bundle → ``repro-slo-v1`` doc.

    ``window_days`` is the study's virtual observation window (the
    simulated day count); burn rates are normalised per virtual day so
    a budget fully consumed over a 7-day study reads as ~0.1429/day.
    """
    if bundle is None:
        bundle = default_bundle()
    window_days = max(float(window_days), 1e-9)

    by_method_hist = _histogram_series(snapshot, METHOD_LATENCY_FAMILY, "method")
    by_host_hist = _histogram_series(snapshot, HOST_LATENCY_FAMILY, "host")
    method_calls, host_calls = _call_tallies(snapshot)

    latency = {
        "by_method": {
            method: _entry_percentiles(entry)
            for method, entry in sorted(by_method_hist.items())
        },
        "by_host": {
            host: _entry_percentiles(entry)
            for host, entry in sorted(by_host_hist.items())
        },
    }

    objectives = []
    breaches = 0
    for objective in bundle.objectives:
        source = by_method_hist if objective.scope == "method" else by_host_hist
        tallies = method_calls if objective.scope == "method" else host_calls
        entry = source.get(objective.match)
        observed = None
        if entry is not None:
            observed = _entry_percentiles(entry).get(objective.quantile)
        tally = tallies.get(objective.match, {"calls": 0, "errors": 0})
        calls, errors = tally["calls"], tally["errors"]
        error_rate = (errors / calls) if calls else 0.0
        budget_consumed = (
            min(1.0, error_rate / objective.error_budget)
            if objective.error_budget > 0
            else (1.0 if errors else 0.0)
        )
        latency_ok = observed is None or observed <= objective.threshold_us
        budget_ok = budget_consumed < 1.0
        ok = latency_ok and budget_ok
        if not ok:
            breaches += 1
        objectives.append(
            {
                "name": objective.name,
                "scope": objective.scope,
                "match": objective.match,
                "quantile": objective.quantile,
                "threshold_us": objective.threshold_us,
                "observed_us": observed,
                "latency_ok": latency_ok,
                "calls": calls,
                "errors": errors,
                "error_rate": round(error_rate, 6),
                "error_budget": objective.error_budget,
                "budget_consumed": round(budget_consumed, 6),
                "budget_burn_per_day": round(budget_consumed / window_days, 6),
                "budget_ok": budget_ok,
                "ok": ok,
            }
        )

    return {
        "schema": SLO_SCHEMA,
        "bundle": bundle.name,
        "window_days": round(window_days, 6),
        "objectives": objectives,
        "breaches": breaches,
        "latency": latency,
    }


def slo_json(
    snapshot: dict, bundle: Optional[SloBundle] = None, window_days: float = 1.0
) -> str:
    return (
        json.dumps(
            evaluate_slos(snapshot, bundle, window_days), indent=2, sort_keys=True
        )
        + "\n"
    )


def study_window_days() -> float:
    """The study's virtual observation window in days.

    From firehose collection start through the feed-collection close —
    the span the error budgets amortise over.  A constant of the seeded
    schedule, so burn rates stay deterministic.
    """
    from repro.simulation.clock import US_PER_DAY
    from repro.simulation.config import (
        FEED_COLLECT_END_US,
        FIREHOSE_COLLECT_START_US,
    )

    return (FEED_COLLECT_END_US - FIREHOSE_COLLECT_START_US) / US_PER_DAY


def resolve_bundle(name: str) -> SloBundle:
    try:
        return BUNDLES[name]()
    except KeyError:
        raise ValueError(
            "unknown SLO bundle %r (have: %s)" % (name, ", ".join(sorted(BUNDLES)))
        )

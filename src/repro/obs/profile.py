"""Profiling helpers: finalize-time gauges and report table rows.

Two halves:

* :func:`populate_final_metrics` runs once when the pipeline assembles
  its datasets.  It derives gauges (idempotent ``set``, safe to repeat)
  from dataset fields the collectors already maintain — retry counts,
  item totals, quarantine tallies, fault-injection stats — so
  ``metrics.json`` is a complete picture without double-counting risk.
* The ``*_rows`` builders read a registry back into the host / NSID /
  outcome tables of the telemetry report section.
"""

from __future__ import annotations

#: Outcome label of a successful dispatch; everything else is an error.
OUTCOME_OK = "ok"


def populate_final_metrics(telemetry, datasets) -> None:
    """Derive finalize-time gauges from the assembled study datasets."""
    if telemetry is None or not telemetry.enabled:
        return
    registry = telemetry.registry
    retries = registry.gauge("collector_retries", ("collector",))
    items = registry.gauge("collector_items", ("collector", "kind"))

    identifiers = datasets.identifiers
    retries.set(("identifiers",), identifiers.page_retries)
    items.set(("identifiers", "snapshots"), len(identifiers.snapshots))
    items.set(("identifiers", "dids"), len(identifiers.all_dids()))
    items.set(("identifiers", "aborted_crawls"), identifiers.aborted_crawls)

    diddocs = datasets.did_documents
    retries.set(("diddocs",), diddocs.transient_retries)
    items.set(("diddocs", "documents"), len(diddocs.documents))
    items.set(("diddocs", "failed"), len(diddocs.failed))
    items.set(("diddocs", "quarantined"), len(diddocs.quarantined))
    items.set(("diddocs", "unresolved_transient"), diddocs.unresolved_transient)

    repos = datasets.repositories
    retries.set(("repos",), repos.transient_retries)
    items.set(("repos", "repos"), repos.repo_count)
    items.set(("repos", "failed"), len(repos.failed_dids))
    items.set(("repos", "requests_attempted"), repos.requests_attempted)
    items.set(("repos", "requeued_dids"), repos.requeued_dids)
    items.set(("repos", "retry_rounds"), repos.retry_rounds)
    registry.gauge("repo_crawl_duration_us").set((), repos.crawl_duration_us)

    labels = datasets.labels
    retries.set(("labelers",), labels.transient_retries)
    items.set(("labelers", "announced"), labels.announced_count())
    items.set(("labelers", "functional"), labels.functional_count())
    items.set(("labelers", "labels"), len(labels.labels))
    items.set(("labelers", "signature_failures"), labels.signature_failures)

    feeds = datasets.feed_generators
    retries.set(("feedgens",), feeds.transient_retries)
    items.set(("feedgens", "discovered"), len(feeds.discovered))
    items.set(("feedgens", "with_metadata"), len(feeds.metadata))
    items.set(("feedgens", "getfeed_failures"), len(feeds.getfeed_failures))

    active = datasets.active
    retries.set(("active",), active.transient_retries)
    items.set(("active", "handle_probes"), len(active.handle_probes))
    items.set(("active", "whois_rows"), len(active.whois_rows))
    items.set(("active", "probes_exhausted"), active.probes_exhausted)

    firehose = datasets.firehose
    firehose_gauge = registry.gauge("firehose_resilience", ("kind",))
    firehose_gauge.set(("disconnects",), firehose.disconnects)
    firehose_gauge.set(("reconnects",), firehose.reconnects)
    firehose_gauge.set(("replayed_events",), firehose.replayed_events)
    firehose_gauge.set(("gaps",), len(firehose.gaps))
    firehose_gauge.set(("dropped_events",), firehose.dropped_events)

    integrity = datasets.integrity
    if integrity is not None:
        quarantine = registry.gauge("quarantined_items", ("host", "kind"))
        for (host, kind), count in sorted(integrity.counts.items()):
            quarantine.set((str(host), kind), count)

    faults = datasets.faults
    if faults is not None:
        injected = registry.gauge("faults_injected", ("kind",))
        for kind, count in sorted(faults.injected_by_kind.items()):
            injected.set((kind,), count)
        registry.gauge("fault_calls_seen").set((), faults.calls_seen)
        registry.gauge("fault_injected_latency_us").set((), faults.injected_latency_us)


# -- report tables -------------------------------------------------------------


def host_rows(registry, top_n: int = 10) -> list[tuple]:
    """Top-N hosts by call volume: (host, calls, errors, p50, p90, p99)."""
    calls = registry.family("xrpc_calls_total")
    latency = registry.family("xrpc_latency_us")
    if calls is None:
        return []
    per_host: dict[str, list] = {}
    for (host, _method, outcome), count in calls.items():
        row = per_host.setdefault(host, [0, 0])
        row[0] += count
        if outcome != OUTCOME_OK:
            row[1] += count
    ranked = sorted(per_host.items(), key=lambda kv: (-kv[1][0], kv[0]))[:top_n]
    rows = []
    for host, (total, errors) in ranked:
        if latency is not None:
            p50 = latency.percentile((host,), 0.50)
            p90 = latency.percentile((host,), 0.90)
            p99 = latency.percentile((host,), 0.99)
        else:
            p50 = p90 = p99 = None
        rows.append((host, total, errors, p50, p90, p99))
    return rows


def nsid_rows(registry, top_n: int = 10) -> list[tuple]:
    """Top-N XRPC methods (NSIDs) by call volume: (nsid, calls, errors)."""
    calls = registry.family("xrpc_calls_total")
    if calls is None:
        return []
    per_nsid: dict[str, list] = {}
    for (_host, method, outcome), count in calls.items():
        row = per_nsid.setdefault(method, [0, 0])
        row[0] += count
        if outcome != OUTCOME_OK:
            row[1] += count
    ranked = sorted(per_nsid.items(), key=lambda kv: (-kv[1][0], kv[0]))[:top_n]
    return [(nsid, total, errors) for nsid, (total, errors) in ranked]


def outcome_rows(registry) -> list[tuple]:
    """Call outcomes sorted by volume: (outcome, calls)."""
    calls = registry.family("xrpc_calls_total")
    if calls is None:
        return []
    by_outcome = calls.sum_by(2)
    return sorted(by_outcome.items(), key=lambda kv: (-kv[1], kv[0]))

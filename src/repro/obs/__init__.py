"""Observability: metrics registry, span tracer, per-phase profiling.

``repro.obs`` is the always-available telemetry substrate of the study:

* :mod:`repro.obs.metrics` — counters, gauges, and fixed-bucket
  histograms with near-zero-allocation hot-path increments and a
  deterministic JSON snapshot (``metrics.json``);
* :mod:`repro.obs.trace` — a span tracer recording both wall time and
  virtual (simulation) time, exporting Chrome ``trace_event`` JSON
  viewable in ``chrome://tracing`` / Perfetto (``trace.json``);
* :mod:`repro.obs.telemetry` — the facade the pipeline wires through
  every choke point (``ServiceDirectory.call``, the collectors, the
  engine day loop, checkpoint save/resume);
* :mod:`repro.obs.profile` — report-side helpers: per-phase wall/virtual
  durations, per-host latency percentiles, top-N hosts/NSIDs, and the
  finalize pass that derives retry/quarantine series from the datasets.
"""

from repro.obs.metrics import MetricsRegistry, NullRegistry
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.obs.trace import NullTracer, SpanTracer, validate_trace

__all__ = [
    "MetricsRegistry",
    "NullRegistry",
    "NULL_TELEMETRY",
    "Telemetry",
    "NullTracer",
    "SpanTracer",
    "validate_trace",
]

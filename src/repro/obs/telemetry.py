"""The telemetry facade the pipeline threads through every choke point.

One :class:`Telemetry` object bundles the metrics registry, the span
tracer, and the phase profiler.  It is always available — a fault-free
``World()`` constructs one so bare service directories and collectors
count into a real registry — and ``Telemetry.disabled()`` swaps in
no-op variants for ``--no-telemetry`` benchmark runs.

Clock contract: ``now_virtual`` reads the study's virtual clock
(``ServiceDirectory.now_us``, advanced by the retry helper and the
engine's day loop).  Phase durations are recorded on both clocks; only
the virtual series persists into ``metrics.json`` — wall time is
volatile by definition and lives in the human-readable report.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.obs.events import EventLog, NullEventLog
from repro.obs.metrics import MetricsRegistry, NullRegistry
from repro.obs.trace import NullTracer, SpanTracer, _NULL_CONTEXT


class _Phase:
    """Context manager timing one pipeline phase on both clocks."""

    __slots__ = ("telemetry", "name", "_span", "_event_span", "_wall0", "_virtual0")

    def __init__(self, telemetry: "Telemetry", name: str):
        self.telemetry = telemetry
        self.name = name

    def __enter__(self):
        tel = self.telemetry
        self._event_span = tel.events.phase_span(self.name)
        self._span = tel.tracer.span(
            self.name, cat="phase", args={"span": self._event_span}
        )
        self._span.__enter__()
        tel._phase_spans.append(self._event_span)
        tel.events.emit(
            "phase.start",
            tel.now_virtual(),
            fields={"phase": self.name},
            span=self._event_span,
        )
        self._wall0 = time.perf_counter()
        self._virtual0 = tel.now_virtual()
        return self

    def __exit__(self, exc_type, exc, tb):
        tel = self.telemetry
        self._span.__exit__(exc_type, exc, tb)
        if tel._phase_spans:
            tel._phase_spans.pop()
        if exc_type is not None:
            # A crashed phase records nothing: the journal never saw it
            # either, so the redo after resume counts it exactly once.
            return False
        key = (self.name,)
        tel._phase_runs.inc(key)
        virtual_dur = tel.now_virtual() - self._virtual0
        if virtual_dur > 0:
            tel._phase_virtual.inc(key, virtual_dur)
        tel._phase_wall.inc(key, int((time.perf_counter() - self._wall0) * 1e6))
        tel.events.emit(
            "phase.end",
            tel.now_virtual(),
            fields={"phase": self.name},
            span=self._event_span,
        )
        return False


class Telemetry:
    """Registry + tracer + phase profiler, with checkpoint plumbing."""

    def __init__(
        self,
        now_virtual=None,
        trace: bool = False,
        trace_sample: int = 16,
        max_trace_events: Optional[int] = None,
        enabled: bool = True,
    ):
        self.enabled = enabled
        self._now_virtual = now_virtual
        if enabled:
            self.registry: MetricsRegistry = MetricsRegistry()
        else:
            self.registry = NullRegistry()
        if trace and enabled:
            kwargs = {} if max_trace_events is None else {"max_events": max_trace_events}
            self.tracer = SpanTracer(
                now_virtual=self.now_virtual, sample_every=trace_sample, **kwargs
            )
        else:
            self.tracer = NullTracer()
        self.events = EventLog() if enabled else NullEventLog()
        self._phase_spans: list = []
        self._phase_runs = self.registry.counter("phase_runs_total", ("phase",))
        self._phase_virtual = self.registry.counter("phase_virtual_us_total", ("phase",))
        self._phase_wall = self.registry.counter(
            "phase_wall_us_total", ("phase",), volatile=True
        )

    @classmethod
    def disabled(cls) -> "Telemetry":
        return cls(enabled=False)

    # -- clocks ---------------------------------------------------------------

    def bind_now_virtual(self, fn) -> None:
        self._now_virtual = fn
        self.tracer.bind_now_virtual(fn)

    def now_virtual(self) -> int:
        fn = self._now_virtual
        return fn() if fn is not None else 0

    # -- phases ---------------------------------------------------------------

    def phase(self, name: str):
        """Time one named pipeline phase (wall + virtual + trace span)."""
        if not self.enabled:
            return _NULL_CONTEXT
        return _Phase(self, name)

    def reset_phase(self, name: str) -> None:
        """Zero one phase's series (for phases recounted by full replay).

        The simulation phase re-executes from scratch in every resumed
        process (the engine deterministically replays the whole world),
        so its checkpointed series must be dropped before the replay
        recounts it — the same recount-from-zero contract the engine's
        ``sim_*`` families follow.  The event log takes the opposite
        tack: journaled ``phase.start``/``phase.end`` events *stay* (the
        stream is append-only) and the replay's re-emissions are
        suppressed instead, so a resumed run reproduces the exact event
        stream of an uninterrupted one.
        """
        if not self.enabled:
            return
        key = (name,)
        for family in (self._phase_runs, self._phase_virtual, self._phase_wall):
            family._data.pop(key, None)
        self.events.suppress_phase(name)

    def phase_rows(self) -> list[tuple]:
        """(phase, runs, virtual_us, wall_us) rows for the report."""
        rows = []
        for (name,), runs in sorted(self._phase_runs.items()):
            rows.append(
                (
                    name,
                    runs,
                    self._phase_virtual.get((name,)),
                    self._phase_wall.get((name,)),
                )
            )
        return rows

    # -- events ---------------------------------------------------------------

    @property
    def current_span(self) -> Optional[str]:
        """The innermost open phase's correlation id (None outside)."""
        return self._phase_spans[-1] if self._phase_spans else None

    def emit_event(
        self,
        kind: str,
        fields: Optional[dict] = None,
        span: Optional[str] = None,
        volatile: bool = False,
    ) -> None:
        """Record a structured event at the current virtual instant.

        Defaults the correlation id to the enclosing phase span, so an
        event in ``events.jsonl`` joins its phase in ``trace.json``.
        """
        if not self.enabled:
            return
        self.events.emit(
            kind,
            self.now_virtual(),
            fields=fields,
            span=span if span is not None else self.current_span,
            volatile=volatile,
        )

    # -- artefacts ------------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        return self.registry.snapshot()

    def metrics_json(self) -> str:
        return self.registry.snapshot_json()

    def metrics_openmetrics(self) -> str:
        return self.registry.render_openmetrics()

    def events_jsonl(self, include_volatile: bool = True) -> str:
        return self.events.to_jsonl(include_volatile=include_volatile)

    # -- checkpoint plumbing ---------------------------------------------------

    def state(self) -> dict:
        """What the study journal persists for this telemetry."""
        return {"metrics": self.registry.state(), "events": self.events.state()}

    def adopt(self, state: Optional[dict]) -> None:
        if not self.enabled or not state:
            return
        metrics = state.get("metrics")
        if metrics is not None:
            self.registry.adopt(metrics)
        self.events.adopt(state.get("events"))


#: Shared disabled instance, the default for components constructed
#: outside a world/pipeline (unit tests, ad-hoc collectors).
NULL_TELEMETRY = Telemetry.disabled()

"""Live study dashboard: ``python -m repro top <dir-or-file>``.

Tails the ``status.json`` feed a checkpointed run publishes on every
journal save (see ``StudyCheckpointer._write_status``) — or, post-hoc,
any exported ``metrics.json`` snapshot — and renders the run at a
glance: current phase, call throughput, per-endpoint tail latency,
worker health, and SLO error-budget burn.

Rendering is curses when a terminal is available, with a plain-text
fallback (``--plain`` / non-tty / no curses module) that prints one
frame per refresh.  ``--once`` prints a single frame and exits, which
is what the tests drive.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Optional

from repro.obs.metrics import percentile_from_record
from repro.obs.slo import (
    METHOD_LATENCY_FAMILY,
    evaluate_slos,
    parse_series_key,
    study_window_days,
)

REFRESH_DEFAULT_S = 2.0


def _resolve_path(path: str) -> Optional[str]:
    """A concrete feed file from a path argument (file or directory)."""
    if os.path.isdir(path):
        for name in ("status.json", "metrics.json"):
            candidate = os.path.join(path, name)
            if os.path.exists(candidate):
                return candidate
        return None
    return path if os.path.exists(path) else None


def _load(path: str) -> Optional[dict]:
    """Parse one feed frame; None when missing/torn (retry next tick)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(document, dict):
        return None
    if document.get("schema") == "repro-status-v1":
        return document
    if document.get("schema") == "repro-metrics-v1":
        return {"schema": "repro-status-v1", "metrics": document}
    return None


def _counter_total(metrics: dict, family: str) -> int:
    total = 0
    for key, value in metrics.get("counters", {}).items():
        if parse_series_key(key)[0] == family:
            total += value
    return total


def _fmt_us(value) -> str:
    if value is None:
        return "-"
    if value >= 60_000_000:
        return "%.1fm" % (value / 60_000_000)
    if value >= 1_000_000:
        return "%.1fs" % (value / 1_000_000)
    if value >= 1_000:
        return "%.1fms" % (value / 1_000)
    return "%dus" % value


def _current_phase(status: dict) -> str:
    """The innermost phase still open in the event tail."""
    stack: list = []
    for event in status.get("events_tail", ()):
        kind = event.get("kind")
        name = event.get("fields", {}).get("phase")
        if kind == "phase.start":
            stack.append(name)
        elif kind == "phase.end" and name in stack:
            stack.remove(name)
    return stack[-1] if stack else "(idle)"


def _method_p99_rows(metrics: dict, top_n: int = 8) -> list:
    rows = []
    for key, entry in metrics.get("histograms", {}).items():
        name, labels = parse_series_key(key)
        if name != METHOD_LATENCY_FAMILY:
            continue
        bounds = tuple(b for b in entry["le"] if b != "+Inf")
        p99 = percentile_from_record(
            bounds, entry["counts"], entry["count"], entry.get("overflow_sum", 0), 0.99
        )
        rows.append((labels.get("method", "?"), entry["count"], p99))
    rows.sort(key=lambda row: (-row[1], row[0]))
    return rows[:top_n]


def _worker_health(metrics: dict) -> str:
    restarts = _counter_total(metrics, "sim_worker_restarts_total")
    hangs = _counter_total(metrics, "sim_worker_hangs_detected_total")
    fallbacks = _counter_total(metrics, "sim_worker_fallbacks_total")
    if not (restarts or hangs or fallbacks):
        return "workers: healthy (no restarts, hangs, or fallbacks)"
    return "workers: %d shard-restarts, %d hangs detected, %d shard-fallbacks" % (
        restarts,
        hangs,
        fallbacks,
    )


def render_frame(
    status: dict,
    previous: Optional[dict] = None,
    interval_s: float = REFRESH_DEFAULT_S,
    source: str = "",
) -> str:
    """One dashboard frame as plain text (shared by curses and plain)."""
    metrics = status.get("metrics", {})
    lines = []
    lines.append("repro top — %s" % (source or "study telemetry"))
    lines.append(
        "phase: %-24s  ticks: %-10s  done actions: %s"
        % (
            _current_phase(status),
            status.get("ticks", "-"),
            status.get("done_actions", "-"),
        )
    )

    calls = _counter_total(metrics, "xrpc_calls_total")
    rate = ""
    if previous is not None and interval_s > 0:
        prev_calls = _counter_total(previous.get("metrics", {}), "xrpc_calls_total")
        rate = "  (%.0f calls/s)" % (max(0, calls - prev_calls) / interval_s)
    lines.append("xrpc calls: %d%s" % (calls, rate))
    lines.append(_worker_health(metrics))

    rows = _method_p99_rows(metrics)
    if rows:
        lines.append("")
        lines.append("  %-44s %10s %10s" % ("endpoint", "calls", "p99"))
        for method, count, p99 in rows:
            lines.append("  %-44s %10d %10s" % (method, count, _fmt_us(p99)))

    slo = evaluate_slos(metrics, window_days=study_window_days())
    lines.append("")
    lines.append(
        "SLOs (%s bundle): %d breach(es)" % (slo["bundle"], slo["breaches"])
    )
    for objective in slo["objectives"]:
        lines.append(
            "  %-24s %-5s %10s / %-10s burn %.4f/day  %s"
            % (
                objective["name"],
                objective["quantile"],
                _fmt_us(objective["observed_us"]),
                _fmt_us(objective["threshold_us"]),
                objective["budget_burn_per_day"],
                "ok" if objective["ok"] else "BREACH",
            )
        )
    return "\n".join(lines)


def _run_plain(path: str, interval_s: float, once: bool) -> int:
    previous = None
    while True:
        status = _load(path)
        if status is None:
            print("repro top: waiting for %s ..." % path, file=sys.stderr)
        else:
            print(render_frame(status, previous, interval_s, source=path))
            previous = status
        if once:
            return 0 if status is not None else 1
        print("-" * 72)
        time.sleep(interval_s)


def _run_curses(path: str, interval_s: float) -> int:
    import curses

    def loop(screen) -> None:
        curses.curs_set(0)
        screen.timeout(int(interval_s * 1000))
        previous = None
        while True:
            status = _load(path)
            screen.erase()
            text = (
                render_frame(status, previous, interval_s, source=path)
                if status is not None
                else "repro top: waiting for %s ..." % path
            )
            max_y, max_x = screen.getmaxyx()
            for y, line in enumerate(text.splitlines()):
                if y >= max_y - 1:
                    break
                screen.addnstr(y, 0, line, max_x - 1)
            screen.addnstr(
                min(max_y - 1, text.count("\n") + 2), 0, "press q to quit", max_x - 1
            )
            screen.refresh()
            if status is not None:
                previous = status
            key = screen.getch()
            if key in (ord("q"), ord("Q")):
                return

    curses.wrapper(loop)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro top",
        description="Live dashboard over a running (or finished) study: "
        "tails the status.json feed written on every checkpoint save, or "
        "renders a metrics.json snapshot post-hoc.",
    )
    parser.add_argument(
        "path",
        nargs="?",
        default=".",
        help="checkpoint directory (status.json), export directory, or a "
        "status.json/metrics.json file (default: current directory)",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=REFRESH_DEFAULT_S,
        metavar="SECONDS",
        help="refresh period (default %.1fs)" % REFRESH_DEFAULT_S,
    )
    parser.add_argument(
        "--once", action="store_true", help="print one frame and exit"
    )
    parser.add_argument(
        "--plain",
        action="store_true",
        help="plain text frames instead of the curses screen",
    )
    args = parser.parse_args(sys.argv[1:] if argv is None else list(argv))

    path = _resolve_path(args.path)
    if path is None:
        print(
            "repro top: no status.json or metrics.json at %r" % args.path,
            file=sys.stderr,
        )
        return 1
    if args.once or args.plain or not sys.stdout.isatty():
        return _run_plain(path, max(0.1, args.interval), args.once)
    try:
        return _run_curses(path, max(0.1, args.interval))
    except Exception:
        # No terminal support (dumb TERM, missing curses): degrade.
        return _run_plain(path, max(0.1, args.interval), args.once)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())

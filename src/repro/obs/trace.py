"""Span tracing with Chrome ``trace_event`` export.

Spans record *both* clocks of the study:

* wall time (``ts``/``dur``) — where the process actually spent its
  seconds; rendered on pid 1 ("wall clock");
* virtual time — where the *simulated crawl* spent its microseconds;
  mirrored as a second event on pid 2 ("virtual time") and attached to
  the wall event as ``args.virtual_ts_us`` / ``args.virtual_dur_us``.

The export is the standard JSON-object trace format (``traceEvents`` +
metadata), so ``trace.json`` loads directly in ``chrome://tracing`` or
https://ui.perfetto.dev.  High-frequency categories (one span per XRPC
call, one instant per firehose frame) are sampled 1-in-N per category
and the whole buffer is bounded; drops are counted, never silent.
"""

from __future__ import annotations

import time
from typing import Optional

PID_WALL = 1
PID_VIRTUAL = 2

#: Event count ceiling; a tiny study emits a few thousand sampled events,
#: the ceiling guards CLI runs at larger scales.
DEFAULT_MAX_EVENTS = 300_000


class _NullContext:
    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_CONTEXT = _NullContext()


class _Span:
    """Context manager for one wall+virtual span."""

    __slots__ = ("tracer", "name", "cat", "args", "_wall0", "_virtual0")

    def __init__(self, tracer: "SpanTracer", name: str, cat: str, args: Optional[dict]):
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args

    def __enter__(self):
        self._wall0 = self.tracer.wall_us()
        self._virtual0 = self.tracer.virtual_us()
        return self

    def __exit__(self, *exc):
        tracer = self.tracer
        virtual_dur = tracer.virtual_us() - self._virtual0
        tracer.complete(
            self.name,
            self.cat,
            self._wall0,
            args=self.args,
            virtual_ts_us=self._virtual0,
            virtual_dur_us=max(0, virtual_dur),
        )
        return False


class SpanTracer:
    """Bounded, sampling trace-event recorder."""

    def __init__(
        self,
        now_virtual=None,
        sample_every: int = 16,
        max_events: int = DEFAULT_MAX_EVENTS,
    ):
        self.enabled = True
        self.sample_every = max(1, int(sample_every))
        self.max_events = max_events
        self.events: list[dict] = []
        self.dropped = 0
        self._now_virtual = now_virtual
        self._wall0 = time.perf_counter()
        self._sample_counts: dict[str, int] = {}

    def bind_now_virtual(self, fn) -> None:
        self._now_virtual = fn

    # -- clocks ---------------------------------------------------------------

    def wall_us(self) -> float:
        return (time.perf_counter() - self._wall0) * 1e6

    def virtual_us(self) -> int:
        fn = self._now_virtual
        return fn() if fn is not None else 0

    # -- sampling -------------------------------------------------------------

    def sampled(self, cat: str) -> bool:
        """True for the first of every ``sample_every`` events in ``cat``."""
        count = self._sample_counts.get(cat, 0)
        self._sample_counts[cat] = count + 1
        return count % self.sample_every == 0

    # -- recording ------------------------------------------------------------

    def span(self, name: str, cat: str = "study", args: Optional[dict] = None, sample: bool = False):
        if not self.enabled or (sample and not self.sampled(cat)):
            return _NULL_CONTEXT
        return _Span(self, name, cat, args)

    def complete(
        self,
        name: str,
        cat: str,
        wall_start_us: float,
        args: Optional[dict] = None,
        virtual_ts_us: Optional[int] = None,
        virtual_dur_us: int = 0,
    ) -> None:
        """Record one finished span (``ph: X``) starting at ``wall_start_us``."""
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        wall_dur = max(0.0, self.wall_us() - wall_start_us)
        event_args = dict(args) if args else {}
        if virtual_ts_us is not None:
            event_args["virtual_ts_us"] = virtual_ts_us
            event_args["virtual_dur_us"] = virtual_dur_us
        self.events.append(
            {
                "name": name,
                "cat": cat,
                "ph": "X",
                "pid": PID_WALL,
                "tid": 1,
                "ts": round(wall_start_us, 3),
                "dur": round(wall_dur, 3),
                "args": event_args,
            }
        )
        if virtual_ts_us is not None and len(self.events) < self.max_events:
            # Raw virtual timestamps; export() rebases the whole pid-2
            # track to the earliest one (spans can complete out of start
            # order, so the origin is only known at export time).
            self.events.append(
                {
                    "name": name,
                    "cat": cat,
                    "ph": "X",
                    "pid": PID_VIRTUAL,
                    "tid": 1,
                    "ts": virtual_ts_us,
                    "dur": virtual_dur_us,
                    "args": {},
                }
            )

    def instant(self, name: str, cat: str, args: Optional[dict] = None, sample: bool = True) -> None:
        if not self.enabled or (sample and not self.sampled(cat)):
            return
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(
            {
                "name": name,
                "cat": cat,
                "ph": "i",
                "s": "t",
                "pid": PID_WALL,
                "tid": 1,
                "ts": round(self.wall_us(), 3),
                "args": dict(args) if args else {},
            }
        )

    # -- export ---------------------------------------------------------------

    def export(self) -> dict:
        """The Chrome trace_event JSON-object document."""
        metadata = [
            _process_name(PID_WALL, "wall clock"),
            _process_name(PID_VIRTUAL, "virtual time (simulation)"),
        ]
        virtual_origin = min(
            (e["ts"] for e in self.events if e["pid"] == PID_VIRTUAL), default=0
        )
        events = [
            {**e, "ts": e["ts"] - virtual_origin} if e["pid"] == PID_VIRTUAL else e
            for e in self.events
        ]
        return {
            "traceEvents": metadata + events,
            "displayTimeUnit": "ms",
            "otherData": {
                "generator": "repro.obs.trace",
                "sample_every": self.sample_every,
                "events_recorded": len(self.events),
                "events_dropped": self.dropped,
            },
        }

    def stats(self) -> dict:
        return {
            "events": len(self.events),
            "dropped": self.dropped,
            "sample_every": self.sample_every,
        }


class NullTracer:
    """Tracing off: every call is a cheap no-op."""

    enabled = False
    sample_every = 0
    events: list = []
    dropped = 0

    def bind_now_virtual(self, fn) -> None:
        pass

    def wall_us(self) -> float:
        return 0.0

    def virtual_us(self) -> int:
        return 0

    def sampled(self, cat: str) -> bool:
        return False

    def span(self, name, cat="study", args=None, sample=False):
        return _NULL_CONTEXT

    def complete(self, name, cat, wall_start_us, args=None, virtual_ts_us=None, virtual_dur_us=0):
        pass

    def instant(self, name, cat, args=None, sample=True):
        pass

    def export(self) -> dict:
        return {"traceEvents": [], "otherData": {"generator": "repro.obs.trace"}}

    def stats(self) -> dict:
        return {"events": 0, "dropped": 0, "sample_every": 0}


def _process_name(pid: int, name: str) -> dict:
    return {
        "name": "process_name",
        "ph": "M",
        "pid": pid,
        "tid": 1,
        "args": {"name": name},
    }


#: Phases every ``X`` / ``i`` / ``M`` event must carry to load in Chrome.
_REQUIRED_KEYS = {
    "X": ("name", "cat", "ph", "pid", "tid", "ts", "dur"),
    "i": ("name", "cat", "ph", "pid", "tid", "ts"),
    "M": ("name", "ph", "pid"),
}


def validate_trace(document: dict) -> list[str]:
    """Schema sanity-check of a trace_event document; returns problems.

    Used by ``scripts/check_trace.py`` (``make trace``) and the test
    suite so the artefact provably loads in chrome://tracing/Perfetto.
    """
    problems: list[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    if not events:
        problems.append("traceEvents is empty")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append("event %d is not an object" % index)
            continue
        phase = event.get("ph")
        required = _REQUIRED_KEYS.get(phase)
        if required is None:
            problems.append("event %d has unsupported ph %r" % (index, phase))
            continue
        for key in required:
            if key not in event:
                problems.append("event %d (%s) missing %r" % (index, phase, key))
        if phase == "X":
            if not isinstance(event.get("ts"), (int, float)) or event["ts"] < 0:
                problems.append("event %d has bad ts %r" % (index, event.get("ts")))
            if not isinstance(event.get("dur"), (int, float)) or event["dur"] < 0:
                problems.append("event %d has bad dur %r" % (index, event.get("dur")))
    pids = {e.get("pid") for e in events if isinstance(e, dict)}
    if events and PID_WALL not in pids:
        problems.append("no wall-clock (pid %d) events" % PID_WALL)
    return problems


#: Float slack for the structural checks below: ``ts``/``dur`` are
#: rounded to 3 decimal µs at record time, so two independently rounded
#: sums can disagree by a couple of thousandths.
_TS_EPSILON_US = 0.01

#: Categories whose spans are strictly-nested context managers on the
#: coordinator thread.  Sampled high-frequency cats and the per-shard
#: day spans legitimately overlap on the wall track, so nesting is only
#: an invariant for these.
NESTED_CATS = ("phase", "study")


def validate_span_nesting(document: dict, cats=NESTED_CATS) -> list[str]:
    """Check that wall-track spans in ``cats`` nest (no partial overlap).

    Phases enter/exit as context managers on one thread, so any two of
    their spans must be either disjoint or fully contained — a span that
    straddles another's boundary means the tracer recorded a structurally
    impossible timeline.
    """
    problems: list[str] = []
    spans = [
        event
        for event in document.get("traceEvents") or []
        if isinstance(event, dict)
        and event.get("ph") == "X"
        and event.get("pid") == PID_WALL
        and event.get("cat") in cats
    ]
    # Outer-first order: by start, longest duration first on ties.
    spans.sort(key=lambda e: (e["ts"], -e["dur"]))
    stack: list[dict] = []
    for span in spans:
        start, end = span["ts"], span["ts"] + span["dur"]
        while stack and stack[-1]["ts"] + stack[-1]["dur"] <= start + _TS_EPSILON_US:
            stack.pop()
        if stack:
            parent_end = stack[-1]["ts"] + stack[-1]["dur"]
            if end > parent_end + _TS_EPSILON_US:
                problems.append(
                    "span %r [%0.3f, %0.3f] straddles the end of %r [.., %0.3f]"
                    % (span["name"], start, end, stack[-1]["name"], parent_end)
                )
                continue
        stack.append(span)
    return problems


def validate_wall_monotonic(document: dict) -> list[str]:
    """Check that the wall track records events in completion order.

    Complete spans are appended when they finish and instants when they
    fire, all from one recording thread over one monotonic clock — so in
    array order, each wall event's completion timestamp (``ts + dur``
    for ``X``, ``ts`` for ``i``) must be non-decreasing.  A violation
    means the clock ran backwards or events were reordered.  The virtual
    track is exempt by design: spans are stamped at their scheduled
    virtual instants, which do not follow completion order.
    """
    problems: list[str] = []
    last = None
    last_name = None
    for index, event in enumerate(document.get("traceEvents") or []):
        if not isinstance(event, dict) or event.get("pid") != PID_WALL:
            continue
        phase = event.get("ph")
        if phase == "X":
            stamp = event["ts"] + event["dur"]
        elif phase == "i":
            stamp = event["ts"]
        else:
            continue
        if last is not None and stamp < last - _TS_EPSILON_US:
            problems.append(
                "event %d (%r) completion ts %.3f precedes %r at %.3f on the "
                "wall track" % (index, event.get("name"), stamp, last_name, last)
            )
        if last is None or stamp > last:
            last = stamp
            last_name = event.get("name")
    return problems

"""Export analysis artefacts as CSV / JSON files.

Writes one machine-readable file per paper artefact so external plotting
tools can draw the real figures.  Returns the list of paths written.

Every file is published atomically (write-temp-then-``os.replace``, see
:mod:`repro.core.atomicio`): a crash mid-export leaves either the
previous complete artefact or nothing, never a torn file.
"""

from __future__ import annotations

import json

from repro.core.analysis import activity, feeds, graph, identity, moderation, summary
from repro.core.atomicio import atomic_write_csv, atomic_write_json, atomic_write_text
from repro.core.pipeline import StudyDatasets


def _write_csv(path: str, headers, rows) -> None:
    atomic_write_csv(path, headers, rows)


def export_artefacts(datasets: StudyDatasets, directory: str) -> list[str]:
    """Write every table/figure's underlying data; returns file paths."""
    import os

    os.makedirs(directory, exist_ok=True)
    written: list[str] = []

    def out(name: str) -> str:
        path = os.path.join(directory, name)
        written.append(path)
        return path

    # Table 1
    _write_csv(
        out("table1_firehose_events.csv"),
        ("event_type", "total", "share_pct"),
        [
            (r.event_type, r.total, "%.4f" % r.share_pct)
            for r in summary.table1_firehose_event_types(datasets)
        ],
    )

    # Figure 1
    fig1 = activity.daily_activity(datasets)
    _write_csv(
        out("fig1_daily_activity.csv"),
        ("day", "active_users", "posts", "likes", "reposts", "follows", "blocks"),
        [
            (
                day,
                fig1.active_users.get(day, 0),
                fig1.ops_by_type["posts"].get(day, 0),
                fig1.ops_by_type["likes"].get(day, 0),
                fig1.ops_by_type["reposts"].get(day, 0),
                fig1.ops_by_type["follows"].get(day, 0),
                fig1.ops_by_type["blocks"].get(day, 0),
            )
            for day in fig1.days
        ],
    )

    # Figure 2
    fig2 = activity.language_communities(datasets)
    rows = []
    for lang, series in sorted(fig2.daily_active_by_lang.items()):
        for day, count in sorted(series.items()):
            rows.append((lang, day, count))
    _write_csv(out("fig2_language_activity.csv"), ("lang", "day", "active_users"), rows)

    # Figure 3
    fig3 = identity.subdomain_distribution(datasets)
    _write_csv(
        out("fig3_handles_per_domain.csv"),
        ("registered_domain", "handles"),
        fig3.handles_per_domain.most_common(),
    )

    # Table 2
    _write_csv(
        out("table2_registrars.csv"),
        ("iana_id", "registrar", "total", "share_pct"),
        [
            (r.iana_id, r.registrar_name, r.total, "%.4f" % r.share_pct)
            for r in identity.table2_registrars(datasets, top_n=50)
        ],
    )

    # Figure 4
    official = moderation.find_official_labeler_did(datasets) or ""
    fig4 = moderation.label_growth(datasets, official)
    _write_csv(
        out("fig4_label_growth.csv"),
        ("month", "official_labels", "community_labels", "community_labelers"),
        [
            (
                month,
                fig4.official_by_month.get(month, 0),
                fig4.community_by_month.get(month, 0),
                fig4.labeler_count_by_month.get(month, 0),
            )
            for month in fig4.months
        ],
    )

    # Tables 3, 4, 6 and Figures 5, 6
    _write_csv(
        out("table3_top_labelers.csv"),
        ("rank", "applied", "did", "likes"),
        [
            (r.rank, r.applied, r.did, r.likes)
            for r in moderation.table3_top_community_labelers(datasets, official)
        ],
    )
    _write_csv(
        out("table4_label_targets.csv"),
        ("object_type", "objects", "share_pct", "top_labels"),
        [
            (r.object_type, r.objects, "%.4f" % r.share_pct, json.dumps(r.top_labels))
            for r in moderation.table4_label_targets(datasets)
        ],
    )
    _write_csv(
        out("table6_labeler_reactions.csv"),
        ("rank", "did", "top_values", "unique", "total", "share_pct", "median_s", "iqd_s"),
        [
            (
                r.rank,
                r.did,
                "|".join(r.top_values),
                r.unique_values,
                r.total,
                "%.4f" % r.share_pct,
                "%.3f" % r.reaction.median_s,
                "%.3f" % r.reaction.iqd_s,
            )
            for r in moderation.labeler_reaction_times(datasets)
        ],
    )
    _write_csv(
        out("fig6_value_reactions.csv"),
        ("src", "value", "count", "median_s", "q1_s", "q3_s"),
        [
            (r.src, r.value, r.count, "%.3f" % r.reaction.median_s,
             "%.3f" % r.reaction.q1_s, "%.3f" % r.reaction.q3_s)
            for r in moderation.value_reaction_times(datasets)
        ],
    )

    # Figure 7
    fig7 = feeds.feed_growth(datasets)
    _write_csv(
        out("fig7_feed_growth.csv"),
        ("day", "cumulative_feeds", "cumulative_likes", "cumulative_followers"),
        [
            (
                day,
                fig7.cumulative_feeds.get(day, 0),
                fig7.cumulative_feed_likes.get(day, 0),
                fig7.cumulative_creator_followers.get(day, 0),
            )
            for day in fig7.days
        ],
    )

    # Figures 8-10, 12
    _write_csv(
        out("fig8_description_words.csv"),
        ("word", "count"),
        feeds.description_word_frequencies(datasets, top_n=100),
    )
    fig9 = feeds.feed_label_analysis(datasets)
    _write_csv(
        out("fig9_feed_labels.csv"),
        ("dominant_label", "feeds"),
        fig9.dominant_label_counts.most_common(),
    )
    _write_csv(
        out("fig10_posts_vs_likes.csv"),
        ("feed_uri", "posts", "likes"),
        [(p.uri, p.posts, p.likes) for p in feeds.posts_vs_likes(datasets)],
    )
    _write_csv(
        out("fig12_providers.csv"),
        ("provider", "feeds", "feed_share", "posts", "post_share", "likes", "like_share"),
        [
            (
                r.provider,
                r.feeds,
                "%.5f" % r.feed_share,
                r.posts,
                "%.5f" % r.post_share,
                r.likes,
                "%.5f" % r.like_share,
            )
            for r in feeds.provider_shares(datasets)
        ],
    )

    # Figure 11
    analysis = graph.degree_distributions(datasets)
    _write_csv(
        out("fig11_in_degree.csv"),
        ("degree", "accounts", "feed_creators"),
        [
            (degree, count, analysis.in_degree.creator_histogram.get(degree, 0))
            for degree, count in sorted(analysis.in_degree.histogram.items())
        ],
    )
    _write_csv(
        out("fig11_out_degree.csv"),
        ("degree", "accounts", "feed_creators"),
        [
            (degree, count, analysis.out_degree.creator_histogram.get(degree, 0))
            for degree, count in sorted(analysis.out_degree.histogram.items())
        ],
    )

    # Table 5 (static) + dataset overview
    atomic_write_json(out("table5_features.json"), feeds.table5_feature_matrix())
    overview = summary.dataset_overview(datasets)
    atomic_write_json(out("dataset_overview.json"), overview.__dict__)

    # Integrity/quarantine ledger (what was rejected, from whom, and why)
    if datasets.integrity is not None:
        atomic_write_json(out("integrity.json"), datasets.integrity.to_jsonable())

    telemetry = datasets.telemetry
    if telemetry is not None and telemetry.enabled:
        # Deterministic by construction: only virtual-time / counted
        # series are non-volatile, so two same-seed runs (and a resumed
        # run) write byte-identical files.  ``metrics.prom`` and
        # ``slo.json`` are pure functions of the same snapshot and
        # inherit the guarantee; ``events.jsonl`` carries a wall clock
        # column by design (dual clocks) — strip it to compare runs.
        from repro.obs.slo import slo_json, study_window_days

        atomic_write_text(out("metrics.json"), telemetry.metrics_json())
        atomic_write_text(out("metrics.prom"), telemetry.metrics_openmetrics())
        atomic_write_text(
            out("slo.json"),
            slo_json(telemetry.metrics_snapshot(), window_days=study_window_days()),
        )
        events = telemetry.events_jsonl()
        if events:
            atomic_write_text(out("events.jsonl"), events)
        if telemetry.tracer.enabled:
            atomic_write_json(out("trace.json"), telemetry.tracer.export())

    return written


# ---------------------------------------------------------------------------
# Artefact fingerprinting (sharded-determinism guardrail)
# ---------------------------------------------------------------------------


def firehose_frame_observer(world):
    """Attach a wire-frame digest subscriber to ``world``'s firehose.

    Must be called BEFORE the world runs.  Returns a zero-argument
    closure yielding the running sha256 hex digest over every frame
    published so far — the byte-level half of the identity check the
    sharding tests and the bench guardrail share (the retention window
    prunes old events, so hashing frames as they are published is the
    only way to cover the whole stream).
    """
    import hashlib

    hasher = hashlib.sha256()
    world.relay.firehose.subscribe(lambda event: hasher.update(event.wire_frame()))
    return hasher.hexdigest


def study_fingerprint(datasets: StudyDatasets, frame_digest=None) -> str:
    """One hash over the run's externally visible artefacts.

    Folds Table 1, the metrics registry snapshot, and the firehose
    dataset's counters — plus an optional wire-frame digest captured by
    :func:`firehose_frame_observer` — into a single sha256 hex digest.
    Two runs of the same seed must fingerprint identically regardless of
    ``--workers`` count and regardless of crash/resume interruptions;
    the sharded engine's deterministic relay merge is what makes that
    hold, and ``make test-shard`` plus the bench guardrail enforce it.
    """
    import hashlib

    from repro.core import report

    hasher = hashlib.sha256()
    hasher.update(report.render_table1(datasets).encode())
    telemetry = datasets.telemetry
    if telemetry is not None and telemetry.enabled:
        hasher.update(telemetry.metrics_json().encode())
    fh = datasets.firehose
    hasher.update(
        repr(
            (
                sorted(fh.event_counts.items()),
                sorted(fh.op_counts.items()),
                fh.handle_updates,
                fh.tombstoned_dids,
                fh.bytes_received,
                fh.dropped_events,
            )
        ).encode()
    )
    if frame_digest is not None:
        digest = frame_digest() if callable(frame_digest) else frame_digest
        hasher.update(digest.encode())
    return hasher.hexdigest()

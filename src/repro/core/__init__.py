"""The paper's measurement pipeline and analyses.

:mod:`repro.core.collect` implements the data collection of Section 3 —
the five datasets plus the active DNS / WHOIS measurements — against any
world exposing the standard service endpoints.  :mod:`repro.core.analysis`
turns the collected datasets into every table and figure of the paper.
:mod:`repro.core.pipeline` wires both to a simulated world.
"""

from repro.core.pipeline import MeasurementPipeline, StudyDatasets

__all__ = ["MeasurementPipeline", "StudyDatasets"]

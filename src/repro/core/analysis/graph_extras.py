"""Extended social-graph analysis (beyond the paper's scope).

The paper "deliberately omit[s] a deeper analysis of the social graph";
follow-up work (Quelle & Bovet 2024) studies Bluesky's topology.  This
module provides the standard network-science measures over the collected
follow graph, built on :mod:`networkx`: reciprocity, weak components,
clustering, PageRank, and a log-log degree-slope estimate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.pipeline import StudyDatasets


@dataclass
class GraphSummary:
    nodes: int = 0
    edges: int = 0
    reciprocity: float = 0.0
    weakly_connected_components: int = 0
    giant_component_share: float = 0.0
    average_clustering_sample: float = 0.0
    top_pagerank: list = field(default_factory=list)  # [(did, score)]
    in_degree_slope: float = 0.0  # log-log tail slope (negative)


def build_follow_graph(datasets: StudyDatasets):
    """The directed follow graph as a networkx DiGraph."""
    import networkx as nx

    graph = nx.DiGraph()
    for row in datasets.repositories.follows:
        if row.subject:
            graph.add_edge(row.did, row.subject)
    return graph


def degree_slope(degrees: list[int]) -> float:
    """Least-squares slope of the log-log degree histogram tail."""
    from collections import Counter

    histogram = Counter(d for d in degrees if d > 0)
    points = [(math.log(d), math.log(c)) for d, c in histogram.items() if c > 0]
    if len(points) < 3:
        return 0.0
    n = len(points)
    sum_x = sum(x for x, _ in points)
    sum_y = sum(y for _, y in points)
    sum_xx = sum(x * x for x, _ in points)
    sum_xy = sum(x * y for x, y in points)
    denominator = n * sum_xx - sum_x * sum_x
    if denominator == 0:
        return 0.0
    return (n * sum_xy - sum_x * sum_y) / denominator


def graph_summary(datasets: StudyDatasets, clustering_sample: int = 300) -> GraphSummary:
    """Compute the extended topology measures."""
    import networkx as nx

    graph = build_follow_graph(datasets)
    result = GraphSummary(nodes=graph.number_of_nodes(), edges=graph.number_of_edges())
    if graph.number_of_nodes() == 0:
        return result
    result.reciprocity = nx.reciprocity(graph) or 0.0
    undirected = graph.to_undirected()
    components = list(nx.connected_components(undirected))
    result.weakly_connected_components = len(components)
    giant = max(components, key=len)
    result.giant_component_share = len(giant) / graph.number_of_nodes()
    sample_nodes = sorted(giant)[:clustering_sample]
    result.average_clustering_sample = nx.average_clustering(
        undirected, nodes=sample_nodes
    )
    pagerank = nx.pagerank(graph, alpha=0.85, max_iter=200)
    result.top_pagerank = sorted(pagerank.items(), key=lambda kv: -kv[1])[:10]
    result.in_degree_slope = degree_slope([d for _, d in graph.in_degree()])
    return result

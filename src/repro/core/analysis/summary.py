"""Dataset overview and Table 1 (Firehose event types)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.atproto.events import (
    KIND_COMMIT,
    KIND_HANDLE,
    KIND_IDENTITY,
    KIND_TOMBSTONE,
)
from repro.core.pipeline import StudyDatasets

EVENT_LABELS = {
    KIND_COMMIT: "Repo Commit",
    KIND_IDENTITY: "Identity Update",
    KIND_HANDLE: "User Handle Update",
    KIND_TOMBSTONE: "Repo Tombstone",
}


@dataclass
class Table1Row:
    event_type: str
    total: int
    share_pct: float


def table1_firehose_event_types(datasets: StudyDatasets) -> list[Table1Row]:
    """Table 1: event counts and shares, most frequent first."""
    counts = datasets.firehose.event_counts
    total = sum(counts.values())
    rows = []
    for kind in (KIND_COMMIT, KIND_IDENTITY, KIND_HANDLE, KIND_TOMBSTONE):
        count = counts.get(kind, 0)
        share = (100.0 * count / total) if total else 0.0
        rows.append(Table1Row(EVENT_LABELS[kind], count, share))
    rows.sort(key=lambda row: -row.total)
    return rows


@dataclass
class DatasetOverview:
    """The Section 3 headline numbers."""

    identifiers: int
    did_documents: int
    did_web_documents: int
    repositories: int
    firehose_events: int
    feed_generators_discovered: int
    feed_generators_reachable: int
    feed_posts_collected: int
    labelers_announced: int
    labelers_functional: int
    labelers_active: int
    label_interactions: int
    labels_rescinded: int


@dataclass
class FirehoseBandwidth:
    """Section 9's scalability estimate: stream volume per subscriber."""

    days_observed: float
    bytes_per_day: float
    full_scale_gb_per_day: float  # scaled up by the population factor


def firehose_bandwidth(datasets: StudyDatasets, scale: float) -> FirehoseBandwidth:
    """Estimate the firehose's daily volume, extrapolated to full scale.

    The paper estimates ~30 GB/day per subscribed client; the simulated
    stream's volume times the population scale factor should land in the
    same order of magnitude.
    """
    firehose = datasets.firehose
    span_us = max(1, firehose.end_us - firehose.start_us)
    days = span_us / (24 * 3600 * 1_000_000)
    per_day = firehose.bytes_received / days
    return FirehoseBandwidth(
        days_observed=days,
        bytes_per_day=per_day,
        full_scale_gb_per_day=per_day / scale / 1e9,
    )


def dataset_overview(datasets: StudyDatasets) -> DatasetOverview:
    return DatasetOverview(
        identifiers=len(datasets.identifiers.all_dids()),
        did_documents=len(datasets.did_documents),
        did_web_documents=len(datasets.did_documents.did_web_rows()),
        repositories=datasets.repositories.repo_count,
        firehose_events=datasets.firehose.total_events(),
        feed_generators_discovered=datasets.feed_generators.discovered_count(),
        feed_generators_reachable=len(datasets.feed_generators.reachable()),
        feed_posts_collected=datasets.feed_generators.total_observed_posts(),
        labelers_announced=datasets.labels.announced_count(),
        labelers_functional=datasets.labels.functional_count(),
        labelers_active=datasets.labels.active_count(),
        label_interactions=len(datasets.labels.labels),
        labels_rescinded=sum(1 for label in datasets.labels.labels if label.neg),
    )

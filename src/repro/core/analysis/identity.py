"""Section 5 — (De)centralized Identity.

Handle concentration (bsky.social vs the rest), Figure 3 (subdomain
handles per registered domain), Table 2 (registrars), handle-ownership
mechanisms, did:web counts, Tranco cross-reference, and handle updates.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.pipeline import StudyDatasets
from repro.netsim.psl import default_psl

BSKY_SUFFIX = ".bsky.social"


@dataclass
class HandleConcentration:
    total_handles: int = 0
    bsky_social: int = 0
    non_bsky: int = 0

    @property
    def bsky_share(self) -> float:
        return self.bsky_social / self.total_handles if self.total_handles else 0.0


def handle_concentration(datasets: StudyDatasets) -> HandleConcentration:
    result = HandleConcentration()
    for handle in datasets.did_documents.handles():
        result.total_handles += 1
        if handle.endswith(BSKY_SUFFIX):
            result.bsky_social += 1
        else:
            result.non_bsky += 1
    return result


@dataclass
class SubdomainDistribution:
    """Figure 3: FQDN handles per registered domain (bsky.social excluded)."""

    handles_per_domain: Counter = field(default_factory=Counter)

    def top(self, n: int = 10) -> list[tuple[str, int]]:
        return self.handles_per_domain.most_common(n)

    def sorted_counts(self) -> list[int]:
        return sorted(self.handles_per_domain.values(), reverse=True)


def subdomain_distribution(datasets: StudyDatasets) -> SubdomainDistribution:
    psl = default_psl()
    result = SubdomainDistribution()
    for handle in datasets.did_documents.handles():
        if handle.endswith(BSKY_SUFFIX):
            continue
        try:
            registered = psl.registered_domain(handle)
        except ValueError:
            continue
        if registered is not None:
            result.handles_per_domain[registered] += 1
    return result


@dataclass
class Table2Row:
    iana_id: int
    registrar_name: str
    total: int
    share_pct: float


def table2_registrars(datasets: StudyDatasets, top_n: int = 7) -> list[Table2Row]:
    """Table 2: domain-name handles per registrar (IANA-extractable)."""
    counts = datasets.active.registrar_counts()
    total = sum(counts.values())
    rows = [
        Table2Row(
            iana_id=iana_id,
            registrar_name=name,
            total=count,
            share_pct=100.0 * count / total if total else 0.0,
        )
        for (iana_id, name), count in counts.most_common(top_n)
    ]
    return rows


@dataclass
class RegistrarConcentration:
    registrar_count: int = 0
    domains_with_iana_id: int = 0
    top4_share: float = 0.0


def registrar_concentration(datasets: StudyDatasets) -> RegistrarConcentration:
    counts = datasets.active.registrar_counts()
    total = sum(counts.values())
    top4 = sum(count for _, count in counts.most_common(4))
    return RegistrarConcentration(
        registrar_count=len(counts),
        domains_with_iana_id=total,
        top4_share=(top4 / total) if total else 0.0,
    )


@dataclass
class OwnershipMechanisms:
    """DNS TXT vs well-known verification split (Section 5)."""

    dns_txt: int = 0
    well_known: int = 0
    unverifiable: int = 0

    @property
    def verified(self) -> int:
        return self.dns_txt + self.well_known

    @property
    def dns_share(self) -> float:
        return self.dns_txt / self.verified if self.verified else 0.0


def ownership_mechanisms(datasets: StudyDatasets) -> OwnershipMechanisms:
    result = OwnershipMechanisms()
    for row in datasets.active.handle_probes:
        if row.mechanism == "dns-txt":
            result.dns_txt += 1
        elif row.mechanism == "well-known":
            result.well_known += 1
        else:
            result.unverifiable += 1
    return result


@dataclass
class IdentityMethodCounts:
    plc: int = 0
    web: int = 0


def identity_methods(datasets: StudyDatasets) -> IdentityMethodCounts:
    result = IdentityMethodCounts()
    for row in datasets.did_documents.documents.values():
        if row.method == "web":
            result.web += 1
        else:
            result.plc += 1
    return result


@dataclass
class TrancoCrossReference:
    registered_domains: int = 0
    ranked: int = 0

    @property
    def ranked_share(self) -> float:
        return self.ranked / self.registered_domains if self.registered_domains else 0.0


def tranco_cross_reference(datasets: StudyDatasets) -> TrancoCrossReference:
    return TrancoCrossReference(
        registered_domains=len(datasets.active.registered_domains),
        ranked=len(datasets.active.tranco_ranked),
    )


@dataclass
class HandleUpdateStats:
    """Section 5, 'User Handles Updates' (from the firehose)."""

    total_updates: int = 0
    unique_dids: int = 0
    unique_handles: int = 0
    final_bsky: int = 0
    final_custom: int = 0
    # Users who switched back to a handle they had used before (the paper
    # infers "switching back and forth" from unique_handles < updates).
    ping_pong_users: int = 0

    @property
    def final_bsky_share(self) -> float:
        finals = self.final_bsky + self.final_custom
        return self.final_bsky / finals if finals else 0.0


def handle_update_stats(datasets: StudyDatasets) -> HandleUpdateStats:
    updates = datasets.firehose.handle_updates
    result = HandleUpdateStats(total_updates=len(updates))
    final_handle: dict[str, str] = {}
    seen_per_did: dict[str, set] = {}
    handles = set()
    ping_pong: set = set()
    for time_us, did, handle in sorted(updates):
        history = seen_per_did.setdefault(did, set())
        if handle in history:
            ping_pong.add(did)
        history.add(handle)
        final_handle[did] = handle
        handles.add(handle)
    result.unique_dids = len(final_handle)
    result.unique_handles = len(handles)
    result.ping_pong_users = len(ping_pong)
    for handle in final_handle.values():
        if handle.endswith(BSKY_SUFFIX):
            result.final_bsky += 1
        else:
            result.final_custom += 1
    return result

"""Analyses reproducing every table and figure of the paper.

One module per paper section:

* :mod:`repro.core.analysis.summary` — datasets overview + Table 1,
* :mod:`repro.core.analysis.activity` — Section 4 (Figures 1–2),
* :mod:`repro.core.analysis.identity` — Section 5 (Figure 3, Table 2),
* :mod:`repro.core.analysis.moderation` — Section 6 (Figures 4–6, Tables 3–4, 6),
* :mod:`repro.core.analysis.feeds` — Section 7 (Figures 7–10, 12, Table 5),
* :mod:`repro.core.analysis.graph` — Figure 11 degree distributions.
"""

"""Section 7 — Content Recommendation.

Figure 7 (cumulative feed generators / likes / followers), Figure 8
(description word frequencies), Figure 9 (labels on curated posts),
Figure 10 (posts vs likes), Figure 12 (hosting providers), Table 5
(platform feature matrix), feeds-per-account statistics, description
languages, timestamp anomalies, and the Pearson correlations.
"""

from __future__ import annotations

import math
import re
from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.core.analysis.langid import detect_language
from repro.core.collect.repos import parse_created_at_us
from repro.core.pipeline import StudyDatasets
from repro.simulation.clock import US_PER_DAY, day_key, date_us

BLUESKY_LAUNCH_US = date_us("2022-11-01")


def pearson(xs: list[float], ys: list[float]) -> float:
    """Pearson correlation coefficient (0.0 for degenerate input)."""
    n = len(xs)
    if n < 2 or n != len(ys):
        return 0.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


# ---------------------------------------------------------------------------
# Figure 7 — growth
# ---------------------------------------------------------------------------


@dataclass
class FeedGrowth:
    days: list[str] = field(default_factory=list)
    cumulative_feeds: dict[str, int] = field(default_factory=dict)
    cumulative_feed_likes: dict[str, int] = field(default_factory=dict)
    cumulative_creator_followers: dict[str, int] = field(default_factory=dict)


def feed_growth(datasets: StudyDatasets) -> FeedGrowth:
    repos = datasets.repositories
    feed_uris = {row.uri for row in repos.feed_generators}
    creators = {row.did for row in repos.feed_generators}

    feeds_per_day = Counter(
        day_key(row.created_us) for row in repos.feed_generators if row.created_us
    )
    likes_per_day = Counter(
        day_key(row.created_us)
        for row in repos.likes
        if row.created_us and row.created_us > 0 and row.subject in feed_uris
    )
    follows_per_day = Counter(
        day_key(row.created_us)
        for row in repos.follows
        if row.created_us and row.created_us > 0 and row.subject in creators
    )
    days = sorted(set(feeds_per_day) | set(likes_per_day) | set(follows_per_day))
    result = FeedGrowth(days=days)
    totals = [0, 0, 0]
    for day in days:
        totals[0] += feeds_per_day.get(day, 0)
        totals[1] += likes_per_day.get(day, 0)
        totals[2] += follows_per_day.get(day, 0)
        result.cumulative_feeds[day] = totals[0]
        result.cumulative_feed_likes[day] = totals[1]
        result.cumulative_creator_followers[day] = totals[2]
    return result


# ---------------------------------------------------------------------------
# Figure 8 — description words
# ---------------------------------------------------------------------------

_WORD_RE = re.compile(r"[a-z][a-z'#.-]+")
_STOPWORDS = frozenset(
    "the and for with all this that you your are was not of to in on a an".split()
)


def description_word_frequencies(datasets: StudyDatasets, top_n: int = 30) -> list[tuple[str, int]]:
    """Figure 8's word cloud, as a ranked word-frequency list."""
    counter: Counter = Counter()
    for meta in datasets.feed_generators.metadata.values():
        for word in _WORD_RE.findall(meta.description.lower()):
            if word not in _STOPWORDS:
                counter[word] += 1
    return counter.most_common(top_n)


def description_languages(datasets: StudyDatasets) -> Counter:
    """Language mix of feed descriptions (Section 7.1: en 45%, ja 36%...)."""
    counter: Counter = Counter()
    for meta in datasets.feed_generators.metadata.values():
        lang = detect_language(meta.description)
        if lang is not None:
            counter[lang] += 1
    return counter


# ---------------------------------------------------------------------------
# Figure 9 — labels on curated posts
# ---------------------------------------------------------------------------


@dataclass
class FeedLabelStats:
    feeds_with_any_label: int = 0
    feeds_examined: int = 0
    heavily_labeled: int = 0  # >= 10% of content labeled
    dominant_label_counts: Counter = field(default_factory=Counter)

    @property
    def labeled_share(self) -> float:
        return self.feeds_with_any_label / self.feeds_examined if self.feeds_examined else 0.0

    @property
    def heavily_labeled_share(self) -> float:
        return self.heavily_labeled / self.feeds_examined if self.feeds_examined else 0.0


def feed_label_analysis(datasets: StudyDatasets, threshold: float = 0.10) -> FeedLabelStats:
    """Figure 9: feeds whose content is heavily labeled and by what."""
    labels_by_uri: dict[str, list[str]] = defaultdict(list)
    negated: set = set()
    for label in datasets.labels.labels:
        if label.neg:
            negated.add((label.uri, label.src, label.val))
    for label in datasets.labels.labels:
        if not label.neg and (label.uri, label.src, label.val) not in negated:
            labels_by_uri[label.uri].append(label.val)
    stats = FeedLabelStats()
    for uri, posts in datasets.feed_generators.feed_posts.items():
        if not posts:
            continue
        stats.feeds_examined += 1
        label_values: Counter = Counter()
        labeled_posts = 0
        for post_uri in posts:
            values = labels_by_uri.get(post_uri)
            if values:
                labeled_posts += 1
                label_values.update(values)
        if labeled_posts == 0:
            continue
        stats.feeds_with_any_label += 1
        if labeled_posts / len(posts) >= threshold:
            stats.heavily_labeled += 1
            stats.dominant_label_counts[label_values.most_common(1)[0][0]] += 1
    return stats


# ---------------------------------------------------------------------------
# Figure 10 — posts vs likes
# ---------------------------------------------------------------------------


@dataclass
class FeedScatterPoint:
    uri: str
    posts: int
    likes: int


def posts_vs_likes(datasets: StudyDatasets) -> list[FeedScatterPoint]:
    points = []
    for meta in datasets.feed_generators.reachable():
        posts = len(datasets.feed_generators.posts_for(meta.uri))
        points.append(FeedScatterPoint(meta.uri, posts, meta.like_count))
    return points


@dataclass
class ScatterSummary:
    total_feeds: int = 0
    never_posted: int = 0
    high_like_no_post: int = 0  # the personalized-feed corner
    high_post_feeds: int = 0  # the aggregator corner
    correlation: float = 0.0


def posts_vs_likes_summary(
    datasets: StudyDatasets,
    high_like_quantile: float = 0.95,
    high_post_quantile: float = 0.95,
) -> ScatterSummary:
    points = posts_vs_likes(datasets)
    summary = ScatterSummary(total_feeds=len(points))
    if not points:
        return summary
    likes_sorted = sorted(point.likes for point in points)
    posts_sorted = sorted(point.posts for point in points)
    like_cut = likes_sorted[int(high_like_quantile * (len(points) - 1))]
    post_cut = posts_sorted[int(high_post_quantile * (len(points) - 1))]
    for point in points:
        if point.posts == 0:
            summary.never_posted += 1
            if point.likes >= max(1, like_cut):
                summary.high_like_no_post += 1
        if point.posts >= max(1, post_cut):
            summary.high_post_feeds += 1
    summary.correlation = pearson(
        [float(p.posts) for p in points], [float(p.likes) for p in points]
    )
    return summary


# ---------------------------------------------------------------------------
# Figure 12 — providers
# ---------------------------------------------------------------------------


@dataclass
class ProviderShare:
    provider: str  # service DID
    feeds: int
    feed_share: float
    posts: int
    post_share: float
    likes: int
    like_share: float


def provider_shares(datasets: StudyDatasets) -> list[ProviderShare]:
    """Figure 12 + the Section 7.2 post/like share comparison."""
    by_provider_feeds: Counter = Counter()
    by_provider_posts: Counter = Counter()
    by_provider_likes: Counter = Counter()
    for meta in datasets.feed_generators.reachable():
        provider = meta.service_did
        by_provider_feeds[provider] += 1
        by_provider_posts[provider] += len(datasets.feed_generators.posts_for(meta.uri))
        by_provider_likes[provider] += meta.like_count
    total_feeds = sum(by_provider_feeds.values())
    total_posts = sum(by_provider_posts.values())
    total_likes = sum(by_provider_likes.values())
    rows = []
    for provider, feeds in by_provider_feeds.most_common():
        rows.append(
            ProviderShare(
                provider=provider,
                feeds=feeds,
                feed_share=feeds / total_feeds if total_feeds else 0.0,
                posts=by_provider_posts[provider],
                post_share=by_provider_posts[provider] / total_posts if total_posts else 0.0,
                likes=by_provider_likes[provider],
                like_share=by_provider_likes[provider] / total_likes if total_likes else 0.0,
            )
        )
    return rows


def top_provider_concentration(datasets: StudyDatasets, top_n: int = 3) -> float:
    rows = provider_shares(datasets)
    return sum(row.feed_share for row in rows[:top_n])


# ---------------------------------------------------------------------------
# Section 7.1 statistics
# ---------------------------------------------------------------------------


@dataclass
class FeedActivityStats:
    reachable: int = 0
    never_posted: int = 0
    inactive_last_month: int = 0
    bogus_timestamp_posts: int = 0

    @property
    def never_posted_share(self) -> float:
        return self.never_posted / self.reachable if self.reachable else 0.0

    @property
    def inactive_share(self) -> float:
        return self.inactive_last_month / self.reachable if self.reachable else 0.0


def feed_activity_stats(datasets: StudyDatasets, as_of_us: int) -> FeedActivityStats:
    stats = FeedActivityStats()
    month_ago = as_of_us - 30 * US_PER_DAY
    for meta in datasets.feed_generators.reachable():
        stats.reachable += 1
        posts = datasets.feed_generators.posts_for(meta.uri)
        if not posts:
            stats.never_posted += 1
            continue
        newest = None
        for observation in posts.values():
            created = parse_created_at_us(observation.created_at)
            if created is None:
                continue
            if created < BLUESKY_LAUNCH_US:
                stats.bogus_timestamp_posts += 1
            if newest is None or created > newest:
                newest = created
        if newest is not None and newest < month_ago:
            stats.inactive_last_month += 1
    return stats


@dataclass
class FeedsPerAccount:
    one_feed_share: float = 0.0
    two_to_ten_share: float = 0.0
    over_hundred_share: float = 0.0
    max_feeds: int = 0
    managers: int = 0


def feeds_per_account(datasets: StudyDatasets) -> FeedsPerAccount:
    per_creator = Counter(row.did for row in datasets.repositories.feed_generators)
    result = FeedsPerAccount(managers=len(per_creator))
    if not per_creator:
        return result
    counts = list(per_creator.values())
    result.one_feed_share = sum(1 for c in counts if c == 1) / len(counts)
    result.two_to_ten_share = sum(1 for c in counts if 2 <= c <= 10) / len(counts)
    result.over_hundred_share = sum(1 for c in counts if c > 100) / len(counts)
    result.max_feeds = max(counts)
    return result


@dataclass
class PopularityCorrelations:
    """Section 7.1: what predicts creator followership."""

    feed_count_vs_followers: float = 0.0
    feed_likes_vs_followers: float = 0.0
    creators: int = 0


def popularity_correlations(datasets: StudyDatasets) -> PopularityCorrelations:
    repos = datasets.repositories
    followers = Counter(row.subject for row in repos.follows if row.subject)
    feed_count = Counter(row.did for row in repos.feed_generators)
    feed_uris_by_creator: dict[str, list[str]] = defaultdict(list)
    for row in repos.feed_generators:
        feed_uris_by_creator[row.did].append(row.uri)
    feed_likes = Counter()
    feed_uris = {row.uri for row in repos.feed_generators}
    for row in repos.likes:
        if row.subject in feed_uris:
            feed_likes[row.subject] += 1
    creators = sorted(feed_count)
    xs_count, xs_likes, ys = [], [], []
    for creator in creators:
        ys.append(float(followers.get(creator, 0)))
        xs_count.append(float(feed_count[creator]))
        xs_likes.append(float(sum(feed_likes.get(uri, 0) for uri in feed_uris_by_creator[creator])))
    return PopularityCorrelations(
        feed_count_vs_followers=pearson(xs_count, ys),
        feed_likes_vs_followers=pearson(xs_likes, ys),
        creators=len(creators),
    )


def table5_feature_matrix() -> dict[str, dict[str, bool]]:
    """Table 5 (static: the platforms' capabilities are code, not data)."""
    from repro.services.feedservice import feature_matrix_table

    return feature_matrix_table()

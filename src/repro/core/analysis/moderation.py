"""Section 6 — Content Moderation.

Figure 4 (labels per month by source + labeler count), Table 3 (top
community labelers), Table 4 (label targets), Figures 5/6 and Table 6
(reaction times), label-value statistics, overlap, and the hosting-class
analysis of labeler endpoints.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Optional

from repro.core.pipeline import StudyDatasets
from repro.netsim.hosting import HostingClass, IpAllocator
from repro.services.labeler import (
    TARGET_ACCOUNT,
    TARGET_OTHER,
    TARGET_POST,
    TARGET_PROFILE_MEDIA,
)
from repro.simulation.clock import US_PER_SECOND, month_key


def _median_and_quartiles(values: list[float]) -> tuple[float, float, float]:
    if not values:
        return (0.0, 0.0, 0.0)
    ordered = sorted(values)
    n = len(ordered)

    def at(q: float) -> float:
        if n == 1:
            return ordered[0]
        pos = q * (n - 1)
        low = int(pos)
        high = min(low + 1, n - 1)
        frac = pos - low
        return ordered[low] * (1 - frac) + ordered[high] * frac

    return at(0.25), at(0.5), at(0.75)


# ---------------------------------------------------------------------------
# Figure 4
# ---------------------------------------------------------------------------


@dataclass
class LabelGrowth:
    """Labels per month by source class + cumulative labeler count."""

    months: list[str] = field(default_factory=list)
    official_by_month: dict[str, int] = field(default_factory=dict)
    community_by_month: dict[str, int] = field(default_factory=dict)
    labeler_count_by_month: dict[str, int] = field(default_factory=dict)

    def community_share(self, month: str) -> float:
        total = self.official_by_month.get(month, 0) + self.community_by_month.get(month, 0)
        if total == 0:
            return 0.0
        return self.community_by_month.get(month, 0) / total


def label_growth(datasets: StudyDatasets, official_did: str) -> LabelGrowth:
    result = LabelGrowth()
    months = set()
    for label in datasets.labels.labels:
        month = month_key(label.cts)
        months.add(month)
        target = result.official_by_month if label.src == official_did else result.community_by_month
        target[month] = target.get(month, 0) + 1
    # Cumulative count of *community* labeler services announced by month.
    announce_month: dict[str, str] = {}
    for did, created_us in datasets.repositories.labeler_services:
        if created_us is not None and did != official_did:
            announce_month[did] = month_key(created_us)
    per_month = Counter(announce_month.values())
    months.update(per_month)
    result.months = sorted(months)
    running = 0
    for month in result.months:
        running += per_month.get(month, 0)
        result.labeler_count_by_month[month] = running
    return result


# ---------------------------------------------------------------------------
# Table 3 / Table 4
# ---------------------------------------------------------------------------


@dataclass
class Table3Row:
    rank: int
    applied: int
    did: str
    likes: int


def table3_top_community_labelers(
    datasets: StudyDatasets, official_did: str, top_n: int = 5
) -> list[Table3Row]:
    """Top community labelers by applied (non-negated) labels on window
    posts — Table 3's counts equal Table 6's — with the likes their
    service records attracted."""
    post_times = datasets.firehose.post_created_us
    applied = Counter(
        label.src
        for label in datasets.labels.labels
        if not label.neg and label.src != official_did and label.uri in post_times
    )
    likes = Counter()
    for row in datasets.repositories.likes:
        if "/app.bsky.labeler.service/" in row.subject:
            likes[row.subject.split("/", 3)[2]] += 1
    rows = []
    for rank, (did, count) in enumerate(applied.most_common(top_n), start=1):
        rows.append(Table3Row(rank=rank, applied=count, did=did, likes=likes.get(did, 0)))
    return rows


@dataclass
class Table4Row:
    object_type: str
    objects: int
    share_pct: float
    top_labels: list[tuple[str, int]]


def table4_label_targets(datasets: StudyDatasets, top_n: int = 5) -> list[Table4Row]:
    """Label targets: unique objects per class, with the top label values."""
    objects_by_type: dict[str, set] = defaultdict(set)
    value_counts: dict[str, Counter] = defaultdict(Counter)
    for label in datasets.labels.labels:
        if label.neg:
            continue
        target = label.target_type
        objects_by_type[target].add(label.uri)
        value_counts[target][label.val] += 1
    total = sum(len(objects) for objects in objects_by_type.values())
    rows = []
    for target in (TARGET_POST, TARGET_ACCOUNT, TARGET_PROFILE_MEDIA, TARGET_OTHER):
        objects = objects_by_type.get(target, set())
        rows.append(
            Table4Row(
                object_type=target,
                objects=len(objects),
                share_pct=100.0 * len(objects) / total if total else 0.0,
                top_labels=value_counts[target].most_common(top_n),
            )
        )
    rows.sort(key=lambda row: -row.objects)
    return rows


# ---------------------------------------------------------------------------
# Reaction times (Figures 5, 6; Table 6)
# ---------------------------------------------------------------------------


@dataclass
class ReactionStats:
    count: int
    q1_s: float
    median_s: float
    q3_s: float

    @property
    def iqd_s(self) -> float:
        return self.q3_s - self.q1_s


@dataclass
class LabelerReactionRow:
    """One row of Table 6."""

    rank: int
    did: str
    top_values: list[str]
    unique_values: int
    total: int
    share_pct: float
    reaction: ReactionStats


def _reaction_times_by(datasets: StudyDatasets, key_fn) -> dict:
    """Reaction times of labels on posts created during the firehose
    window, grouped by an arbitrary key (labeler, or (labeler, value))."""
    post_times = datasets.firehose.post_created_us
    grouped: dict = defaultdict(list)
    for label in datasets.labels.labels:
        if label.neg:
            continue
        created = post_times.get(label.uri)
        if created is None:
            continue  # not a post from the window (accounts, old posts)
        reaction_s = max(0.0, (label.cts - created) / US_PER_SECOND)
        grouped[key_fn(label)].append(reaction_s)
    return grouped


def labeler_reaction_times(datasets: StudyDatasets) -> list[LabelerReactionRow]:
    """Table 6 / Figure 5: per-labeler label counts vs reaction times.

    As in the paper, only labels applied to *posts observed on the
    firehose during the collection window* are counted — not historical
    labels or labels on accounts/profiles — so the official labeler's
    eleven months of prior output do not distort the comparison.
    """
    grouped = _reaction_times_by(datasets, lambda label: label.src)
    post_times = datasets.firehose.post_created_us
    by_src_values: dict[str, Counter] = defaultdict(Counter)
    by_src_total = Counter()
    for label in datasets.labels.labels:
        if not label.neg and label.uri in post_times:
            by_src_values[label.src][label.val] += 1
            by_src_total[label.src] += 1
    total_all = sum(by_src_total.values())
    rows = []
    ordered = sorted(grouped.items(), key=lambda item: -by_src_total[item[0]])
    for rank, (src, times) in enumerate(ordered, start=1):
        q1, median, q3 = _median_and_quartiles(times)
        values = by_src_values[src]
        rows.append(
            LabelerReactionRow(
                rank=rank,
                did=src,
                top_values=[value for value, _ in values.most_common(3)],
                unique_values=len(values),
                total=by_src_total[src],
                share_pct=100.0 * by_src_total[src] / total_all if total_all else 0.0,
                reaction=ReactionStats(len(times), q1, median, q3),
            )
        )
    return rows


@dataclass
class ValueReactionRow:
    """One point of Figure 6."""

    src: str
    value: str
    count: int
    reaction: ReactionStats


def value_reaction_times(datasets: StudyDatasets) -> list[ValueReactionRow]:
    grouped = _reaction_times_by(datasets, lambda label: (label.src, label.val))
    rows = []
    for (src, value), times in grouped.items():
        q1, median, q3 = _median_and_quartiles(times)
        rows.append(
            ValueReactionRow(
                src=src,
                value=value,
                count=len(times),
                reaction=ReactionStats(len(times), q1, median, q3),
            )
        )
    rows.sort(key=lambda row: -row.count)
    return rows


# ---------------------------------------------------------------------------
# Label statistics (Section 6.2 text)
# ---------------------------------------------------------------------------


@dataclass
class LabelStatistics:
    total_interactions: int = 0
    rescinded: int = 0
    labeled_objects: int = 0
    distinct_values_raw: int = 0
    distinct_values_clean: int = 0
    multi_labeler_objects: int = 0
    official_and_community_objects: int = 0
    labeled_window_posts: int = 0
    window_posts: int = 0

    @property
    def multi_labeler_share(self) -> float:
        return self.multi_labeler_objects / self.labeled_objects if self.labeled_objects else 0.0

    @property
    def overlap_share(self) -> float:
        return (
            self.official_and_community_objects / self.labeled_objects
            if self.labeled_objects
            else 0.0
        )


def label_statistics(datasets: StudyDatasets, official_did: str) -> LabelStatistics:
    stats = LabelStatistics()
    stats.total_interactions = len(datasets.labels.labels)
    stats.rescinded = sum(1 for label in datasets.labels.labels if label.neg)
    applied_values: set = set()
    all_values: set = set()
    sources_by_object: dict[str, set] = defaultdict(set)
    labeled_objects: set = set()
    ever_applied: set = set()
    for label in datasets.labels.labels:
        all_values.add(label.val)
        if not label.neg:
            applied_values.add(label.val)
            labeled_objects.add(label.uri)
            sources_by_object[label.uri].add(label.src)
            ever_applied.add((label.uri, label.val, label.src))
    # "Cleaning" removes negations that never had a matching application.
    stats.distinct_values_raw = len(all_values)
    stats.distinct_values_clean = len(applied_values)
    stats.labeled_objects = len(labeled_objects)
    for uri, sources in sources_by_object.items():
        if len(sources) > 1:
            stats.multi_labeler_objects += 1
            if official_did in sources:
                stats.official_and_community_objects += 1
    post_times = datasets.firehose.post_created_us
    stats.window_posts = len(post_times)
    stats.labeled_window_posts = sum(1 for uri in labeled_objects if uri in post_times)
    return stats


# ---------------------------------------------------------------------------
# Hosting classes (Section 6.1 IP analysis)
# ---------------------------------------------------------------------------


@dataclass
class LabelerHosting:
    cloud_or_proxied: int = 0
    residential: int = 0
    unreachable: int = 0

    @property
    def total(self) -> int:
        return self.cloud_or_proxied + self.residential + self.unreachable


def labeler_hosting(datasets: StudyDatasets) -> LabelerHosting:
    result = LabelerHosting()
    for status in datasets.labels.statuses.values():
        if not status.reachable or status.ip is None:
            result.unreachable += 1
            continue
        hosting_class = IpAllocator.classify(status.ip)
        if hosting_class == HostingClass.RESIDENTIAL:
            result.residential += 1
        else:
            result.cloud_or_proxied += 1
    return result


@dataclass
class LabelRegimes:
    """Section 6.3: the official labeler's two issuance regimes.

    NSFW-style values (porn, nudity, gore...) are applied within seconds by
    automated classifiers; deliberated values (spam, !takedown, intolerant,
    sexual-figurative) take much longer — "heavy-handed moderation
    decisions such as removing data are deliberated instead of automated".
    """

    automated_values: list = field(default_factory=list)  # (value, median_s)
    manual_values: list = field(default_factory=list)

    @property
    def automation_boundary_holds(self) -> bool:
        """Every automated value is faster than every manual value."""
        if not self.automated_values or not self.manual_values:
            return False
        slowest_auto = max(median for _, median in self.automated_values)
        fastest_manual = min(median for _, median in self.manual_values)
        return slowest_auto < fastest_manual


def official_label_regimes(
    datasets: StudyDatasets, official_did: str, threshold_s: float = 60.0
) -> LabelRegimes:
    """Split the official labeler's values by reaction-time regime."""
    regimes = LabelRegimes()
    for row in value_reaction_times(datasets):
        if row.src != official_did:
            continue
        bucket = (
            regimes.automated_values
            if row.reaction.median_s < threshold_s
            else regimes.manual_values
        )
        bucket.append((row.value, row.reaction.median_s))
    return regimes


def find_official_labeler_did(datasets: StudyDatasets) -> Optional[str]:
    """The busiest labeler announced before the community opening — in
    practice, the Bluesky official labeler."""
    earliest: Optional[tuple[int, str]] = None
    for did, created_us in datasets.repositories.labeler_services:
        if created_us is None:
            continue
        if earliest is None or created_us < earliest[0]:
            earliest = (created_us, did)
    return earliest[1] if earliest else None

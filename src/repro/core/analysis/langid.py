"""Lexicon-based language identification.

The paper ran ``langdetect`` on Feed Generator descriptions.  Offline, we
identify languages by vocabulary overlap with the per-language word pools
the content generator draws from — exercising the same analysis path
(free-text description → language tag) with a detector suited to the
synthetic corpus.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.simulation.vocab import LANGUAGE_WORDS

_WORD_RE = re.compile(r"[a-z']+")

_INDEX: dict[str, set[str]] = {
    lang: set(words) for lang, words in LANGUAGE_WORDS.items()
}


def detect_language(text: str) -> Optional[str]:
    """Best-overlap language of a text, or None if nothing matches."""
    tokens = set(_WORD_RE.findall(text.lower()))
    if not tokens:
        return None
    best_lang: Optional[str] = None
    best_score = 0
    for lang, words in _INDEX.items():
        score = len(tokens & words)
        if score > best_score:
            best_score = score
            best_lang = lang
    # Ambiguous/topic-only descriptions default to English, like langdetect
    # tends to for short Latin-script strings.
    if best_lang is None and tokens:
        return "en"
    return best_lang

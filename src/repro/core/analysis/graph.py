"""Figure 11 — follow-graph degree distributions.

In-degree (followers) and out-degree (following) distributions over all
accounts, with feed-generator creators highlighted: the paper finds
creators concentrated at high in-degree and low out-degree.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.pipeline import StudyDatasets


@dataclass
class DegreeDistribution:
    """Histogram plus the feed-creator density per degree bucket."""

    histogram: Counter = field(default_factory=Counter)  # degree -> accounts
    creator_histogram: Counter = field(default_factory=Counter)

    def creator_density(self, degree: int) -> float:
        total = self.histogram.get(degree, 0)
        if total == 0:
            return 0.0
        return self.creator_histogram.get(degree, 0) / total

    def mean_degree(self, creators_only: bool = False) -> float:
        source = self.creator_histogram if creators_only else self.histogram
        total = sum(source.values())
        if total == 0:
            return 0.0
        return sum(degree * count for degree, count in source.items()) / total


@dataclass
class DegreeAnalysis:
    in_degree: DegreeDistribution = field(default_factory=DegreeDistribution)
    out_degree: DegreeDistribution = field(default_factory=DegreeDistribution)
    accounts: int = 0
    creators: int = 0

    def creators_skew_popular(self) -> bool:
        """The Figure 11 takeaway: creators have above-average in-degree
        and below-average relative out-degree."""
        mean_in = self.in_degree.mean_degree()
        mean_in_creators = self.in_degree.mean_degree(creators_only=True)
        return mean_in_creators > mean_in


def degree_distributions(datasets: StudyDatasets) -> DegreeAnalysis:
    repos = datasets.repositories
    in_degree: Counter = Counter()
    out_degree: Counter = Counter()
    accounts: set = set()
    for row in repos.follows:
        if not row.subject:
            continue
        in_degree[row.subject] += 1
        out_degree[row.did] += 1
        accounts.add(row.subject)
        accounts.add(row.did)
    creators = {row.did for row in repos.feed_generators}
    analysis = DegreeAnalysis(accounts=len(accounts), creators=len(creators & accounts))
    for account in accounts:
        d_in = in_degree.get(account, 0)
        d_out = out_degree.get(account, 0)
        analysis.in_degree.histogram[d_in] += 1
        analysis.out_degree.histogram[d_out] += 1
        if account in creators:
            analysis.in_degree.creator_histogram[d_in] += 1
            analysis.out_degree.creator_histogram[d_out] += 1
    return analysis

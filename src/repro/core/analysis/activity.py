"""Section 4 — User Activity.

Figure 1 (daily operations and active users), Figure 2 (language
communities), lifetime operation totals, account popularity, and the
non-Bluesky content observed on the firehose.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Optional

from repro.core.pipeline import StudyDatasets
from repro.simulation.clock import day_key


@dataclass
class DailyActivity:
    """Figure 1: per-day operation counts and distinct active users."""

    days: list[str] = field(default_factory=list)  # sorted YYYY-MM-DD
    ops_by_type: dict[str, dict[str, int]] = field(default_factory=dict)
    active_users: dict[str, int] = field(default_factory=dict)


def daily_activity(datasets: StudyDatasets) -> DailyActivity:
    """Rebuild the Figure 1 series from the repositories snapshot."""
    repos = datasets.repositories
    ops_by_type: dict[str, Counter] = {
        "posts": Counter(),
        "likes": Counter(),
        "reposts": Counter(),
        "follows": Counter(),
        "blocks": Counter(),
    }
    active: dict[str, set] = defaultdict(set)

    def bucket(rows, name, did_getter, time_getter):
        counter = ops_by_type[name]
        for row in rows:
            t = time_getter(row)
            if t is None or t < 0:
                continue
            day = day_key(t)
            counter[day] += 1
            active[day].add(did_getter(row))

    bucket(repos.posts, "posts", lambda r: r.did, lambda r: r.created_us)
    bucket(repos.likes, "likes", lambda r: r.did, lambda r: r.created_us)
    bucket(repos.reposts, "reposts", lambda r: r.did, lambda r: r.created_us)
    bucket(repos.follows, "follows", lambda r: r.did, lambda r: r.created_us)
    bucket(repos.blocks, "blocks", lambda r: r.did, lambda r: r.created_us)

    days = sorted(active)
    return DailyActivity(
        days=days,
        ops_by_type={name: dict(counter) for name, counter in ops_by_type.items()},
        active_users={day: len(users) for day, users in active.items()},
    )


@dataclass
class LanguageCommunities:
    """Figure 2: daily active users per language community."""

    user_language: dict[str, str] = field(default_factory=dict)
    daily_active_by_lang: dict[str, dict[str, int]] = field(default_factory=dict)
    users_per_language: Counter = field(default_factory=Counter)


def language_communities(datasets: StudyDatasets) -> LanguageCommunities:
    """Assign each poster a language from their posts' self-assigned tags,
    then count daily actives per community."""
    repos = datasets.repositories
    tag_votes: dict[str, Counter] = defaultdict(Counter)
    for post in repos.posts:
        if post.lang:
            tag_votes[post.did][post.lang] += 1
    user_language = {
        did: votes.most_common(1)[0][0] for did, votes in tag_votes.items()
    }
    daily: dict[str, dict[str, set]] = defaultdict(lambda: defaultdict(set))
    for post in repos.posts:
        lang = user_language.get(post.did)
        if lang is None or post.created_us is None or post.created_us < 0:
            continue
        daily[lang][day_key(post.created_us)].add(post.did)
    result = LanguageCommunities(user_language=user_language)
    result.users_per_language = Counter(user_language.values())
    result.daily_active_by_lang = {
        lang: {day: len(users) for day, users in per_day.items()}
        for lang, per_day in daily.items()
    }
    return result


@dataclass
class AccountPopularity:
    """Most-followed and most-blocked accounts (Section 4)."""

    top_followed: list[tuple[str, int]] = field(default_factory=list)
    top_blocked: list[tuple[str, int]] = field(default_factory=list)
    display_names: dict[str, str] = field(default_factory=dict)


def account_popularity(datasets: StudyDatasets, top_n: int = 10) -> AccountPopularity:
    repos = datasets.repositories
    followers = Counter(row.subject for row in repos.follows if row.subject)
    blocks = Counter(row.subject for row in repos.blocks if row.subject)
    return AccountPopularity(
        top_followed=followers.most_common(top_n),
        top_blocked=blocks.most_common(top_n),
        display_names=dict(repos.profiles),
    )


@dataclass
class NonBskyContent:
    """Section 4: records for applications other than Bluesky."""

    firehose_ops: dict[str, int] = field(default_factory=dict)
    repo_collections: dict[str, int] = field(default_factory=dict)
    total_firehose: int = 0
    share_of_events: float = 0.0


def non_bsky_content(datasets: StudyDatasets) -> NonBskyContent:
    firehose = datasets.firehose
    total = sum(firehose.non_bsky_ops.values())
    events = firehose.total_events()
    return NonBskyContent(
        firehose_ops=dict(firehose.non_bsky_ops),
        repo_collections=dict(datasets.repositories.other_collections),
        total_firehose=total,
        share_of_events=(total / events) if events else 0.0,
    )


def operation_totals(datasets: StudyDatasets) -> dict[str, int]:
    """The Section 4 headline: 740M likes, 225M posts, ... (scaled)."""
    return datasets.repositories.operation_totals()


@dataclass
class ActivityConcentration:
    """How unevenly activity spreads over accounts (an extension stat)."""

    gini: float = 0.0
    top_percentile_share: float = 0.0  # ops by the most active 1%
    accounts: int = 0


def activity_concentration(datasets: StudyDatasets) -> ActivityConcentration:
    """Gini coefficient of per-user operation counts."""
    repos = datasets.repositories
    per_user: Counter = Counter()
    for rows in (repos.posts, repos.likes, repos.reposts, repos.follows, repos.blocks):
        for row in rows:
            per_user[row.did] += 1
    counts = sorted(per_user.values())
    n = len(counts)
    result = ActivityConcentration(accounts=n)
    if n == 0:
        return result
    total = sum(counts)
    if total == 0:
        return result
    # Gini via the sorted-rank formula.
    weighted = sum((index + 1) * value for index, value in enumerate(counts))
    result.gini = (2.0 * weighted) / (n * total) - (n + 1.0) / n
    top = max(1, n // 100)
    result.top_percentile_share = sum(counts[-top:]) / total
    return result


def steady_state_dailies(
    datasets: StudyDatasets, month_prefix: str = "2024-04"
) -> dict[str, float]:
    """Average daily ops and actives in a month (the 'Current Status')."""
    fig1 = daily_activity(datasets)
    days = [day for day in fig1.days if day.startswith(month_prefix)]
    if not days:
        return {}
    out: dict[str, float] = {}
    for name, series in fig1.ops_by_type.items():
        out[name] = sum(series.get(day, 0) for day in days) / len(days)
    out["active_users"] = sum(fig1.active_users.get(day, 0) for day in days) / len(days)
    return out

"""Data-integrity verification and quarantine for every collector.

Byzantine hosts can serve data that *parses* but lies: blocks whose bytes
do not hash to their CID, commits signed by a key the DID document never
published, garbage firehose frames, DID documents claiming the wrong PDS,
and handles whose forward resolution names a DID that does not point
back.  The :class:`IntegrityMonitor` sits between every collector and the
data it ingests — each check either admits the item or *quarantines* it:
the item is dropped from the dataset and accounted against the host that
served it, per corruption kind, so the study completes with its clean
data untouched and a full ledger of what was rejected and why.

Quarantine kinds:

====================  =====================================================
``block-digest``      CAR block payload does not hash to its claimed CID
``car-malformed``     structurally invalid CAR (truncation, bad varints,
                      trailing garbage, undecodable commit)
``mst-invalid``       imported MST violates ordering/fanout invariants
``commit-signature``  commit signature fails against the DID doc's key
``frame``             firehose frame that does not decode
``diddoc-pds``        DID document names a PDS that does not host the DID
``handle-bidi``       handle → DID → handle round-trip fails
``label-signature``   label signature fails against the labeler's key
``identifier``        listRepos row with an unparseable head CID / rev TID
``record-uri``        malformed ``at://`` record URI
====================  =====================================================
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.atproto.car import BlockDigestError, CarError
from repro.atproto.cid import Cid
from repro.atproto.mst import MstError
from repro.atproto.repo import RepoSnapshot, SignatureError, import_car
from repro.atproto.tid import Tid

KIND_BLOCK_DIGEST = "block-digest"
KIND_CAR_MALFORMED = "car-malformed"
KIND_MST_INVALID = "mst-invalid"
KIND_COMMIT_SIGNATURE = "commit-signature"
KIND_FRAME = "frame"
KIND_DIDDOC_PDS = "diddoc-pds"
KIND_HANDLE_BIDI = "handle-bidi"
KIND_LABEL_SIGNATURE = "label-signature"
KIND_IDENTIFIER = "identifier"
KIND_RECORD_URI = "record-uri"

UNKNOWN_HOST = "(unknown)"


@dataclass(frozen=True)
class QuarantinedItem:
    """One rejected item: where it came from, what failed, which item."""

    host: str
    kind: str
    item: str
    detail: str = ""


@dataclass
class IntegrityReport:
    """Aggregate ledger of verification outcomes across all collectors."""

    quarantined: list[QuarantinedItem] = field(default_factory=list)
    counts: Counter = field(default_factory=Counter)  # (host, kind) -> n
    checked: Counter = field(default_factory=Counter)  # kind -> n

    def total_quarantined(self) -> int:
        return len(self.quarantined)

    def by_host(self) -> Counter:
        out: Counter = Counter()
        for (host, _), count in self.counts.items():
            out[host] += count
        return out

    def by_kind(self) -> Counter:
        out: Counter = Counter()
        for (_, kind), count in self.counts.items():
            out[kind] += count
        return out

    def to_jsonable(self) -> dict:
        """A stable (sorted) JSON rendering for the exported artefact.

        Only the quarantine ledger is included: the ``checked`` counters
        tally verification *work*, which a crash/resume chain may
        legitimately redo (work lost after the last journal write), while
        the quarantine ledger is exactly-once by construction and must be
        byte-identical across resumed and uninterrupted runs.
        """
        return {
            "quarantined_total": self.total_quarantined(),
            "quarantined_by_host_kind": [
                {"host": host, "kind": kind, "count": count}
                for (host, kind), count in sorted(self.counts.items())
            ],
            "quarantined_items": [
                {"host": q.host, "kind": q.kind, "item": q.item, "detail": q.detail}
                for q in sorted(
                    self.quarantined, key=lambda q: (q.host, q.kind, q.item, q.detail)
                )
            ],
        }


class IntegrityMonitor:
    """Runtime verification gate shared by every collector.

    ``directory`` (a :class:`~repro.services.xrpc.ServiceDirectory`) is
    used for the DID-document cross-check: the claimed PDS endpoint is
    asked, once per distinct endpoint, for its full ``listRepos``
    membership, and documents naming a PDS that does not host their DID
    are quarantined.
    """

    def __init__(self, directory=None):
        self.directory = directory
        self.report = IntegrityReport()
        self._pds_members: dict[str, Optional[frozenset]] = {}
        self._seen: set[tuple[str, str, str]] = set()

    # -- bookkeeping ---------------------------------------------------------

    def quarantine(self, host: Optional[str], kind: str, item: str, detail: str = "") -> None:
        host = host or UNKNOWN_HOST
        key = (host, kind, item)
        if key in self._seen:
            # Idempotent: on a checkpoint-resumed run the same poisoned
            # item may be re-encountered while redoing work lost after
            # the last journal write; it must be accounted exactly once.
            return
        self._seen.add(key)
        self.report.quarantined.append(QuarantinedItem(host, kind, item, detail))
        self.report.counts[(host, kind)] += 1
        if self.directory is not None:
            # Behind the idempotence guard, so the event stream is
            # exactly-once across crash/resume like the ledger itself.
            self.directory.telemetry.emit_event(
                "integrity.quarantine",
                fields={"host": host, "kind": kind, "item": item},
            )

    def _checked(self, kind: str) -> None:
        self.report.checked[kind] += 1

    def adopt_report(self, report: IntegrityReport) -> None:
        """Install a checkpointed report, rebuilding the idempotence set."""
        self.report = report
        self._seen = {(q.host, q.kind, q.item) for q in report.quarantined}

    def members_state(self) -> dict:
        """The PDS-membership cache, for the checkpoint journal.

        Without this a resumed run would re-crawl ``listRepos`` for
        endpoints an earlier completed action already verified, skewing
        the call counts telemetry persists.
        """
        return dict(self._pds_members)

    def adopt_members(self, state: Optional[dict]) -> None:
        if state:
            self._pds_members = dict(state)

    # -- repository CARs -----------------------------------------------------

    def verify_repo_car(
        self, host: str, did: str, car: bytes, verify_key=None
    ) -> Optional[RepoSnapshot]:
        """Fully verify a ``getRepo`` response; None means quarantined.

        Runs the complete self-certification stack — per-block digests,
        MST invariants, and (when the DID document's key is supplied) the
        commit signature — and classifies the first failure into its
        quarantine kind.
        """
        self._checked("repo")
        try:
            snapshot = import_car(car, verify_key=verify_key, verify_digests=True, check_mst=True)
        except BlockDigestError as exc:
            self.quarantine(host, KIND_BLOCK_DIGEST, did, str(exc))
            return None
        except SignatureError as exc:
            self.quarantine(host, KIND_COMMIT_SIGNATURE, did, str(exc))
            return None
        except MstError as exc:
            self.quarantine(host, KIND_MST_INVALID, did, str(exc))
            return None
        except (CarError, ValueError) as exc:
            self.quarantine(host, KIND_CAR_MALFORMED, did, str(exc))
            return None
        if snapshot.did != did:
            self.quarantine(host, KIND_CAR_MALFORMED, did, "commit did %r" % snapshot.did)
            return None
        return snapshot

    # -- firehose frames -----------------------------------------------------

    def check_frame_bytes(self, host: str, seq: int, data: bytes) -> bool:
        """True when raw wire bytes decode into an event frame."""
        from repro.atproto.frames import decode_event_frame

        self._checked("frame")
        try:
            decode_event_frame(data)
        except ValueError as exc:
            self.quarantine(host, KIND_FRAME, "seq:%d" % seq, str(exc))
            return False
        return True

    # -- DID documents -------------------------------------------------------

    def check_diddoc(self, host: str, did: str, doc) -> bool:
        """Cross-check that the document's claimed PDS really hosts the DID."""
        self._checked("diddoc")
        endpoint = getattr(doc, "pds_endpoint", None)
        if not endpoint:
            self.quarantine(host, KIND_DIDDOC_PDS, did, "document names no PDS")
            return False
        members = self._pds_membership(endpoint)
        if members is None:
            # The claimed endpoint is unreachable/unknown: the claim is
            # unverifiable, which for a crawler equals unverified.
            self.quarantine(host, KIND_DIDDOC_PDS, did, "claimed PDS %s unreachable" % endpoint)
            return False
        if did not in members:
            self.quarantine(host, KIND_DIDDOC_PDS, did, "not hosted by %s" % endpoint)
            return False
        return True

    def _pds_membership(self, endpoint: str) -> Optional[frozenset]:
        """The DID set a PDS claims to host (one paginated crawl, cached)."""
        if endpoint in self._pds_members:
            return self._pds_members[endpoint]
        members: Optional[frozenset] = None
        if self.directory is not None and self.directory.is_reachable(endpoint):
            dids: set[str] = set()
            cursor = None
            while True:
                page = self.directory.try_call(
                    endpoint, "com.atproto.sync.listRepos", cursor=cursor, limit=500
                )
                if page is None:
                    dids = None  # transport failure mid-crawl: unverifiable
                    break
                dids.update(entry["did"] for entry in page.get("repos", ()))
                cursor = page.get("cursor")
                if cursor is None:
                    break
            if dids is not None:
                members = frozenset(dids)
        self._pds_members[endpoint] = members
        return members

    # -- handles -------------------------------------------------------------

    def check_handle_bidi(self, host: str, handle: str, did: Optional[str], doc) -> bool:
        """Bidirectional handle check: handle → DID → document → handle.

        ``host`` is the domain whose DNS TXT / ``.well-known`` answer
        named the DID — the party a forged answer is attributed to.
        """
        self._checked("handle")
        if not did:
            self.quarantine(host, KIND_HANDLE_BIDI, handle, "forward resolution failed")
            return False
        if doc is None:
            self.quarantine(host, KIND_HANDLE_BIDI, handle, "DID %s has no document" % did)
            return False
        if getattr(doc, "handle", None) != handle:
            self.quarantine(
                host,
                KIND_HANDLE_BIDI,
                handle,
                "DID %s points back at %r" % (did, getattr(doc, "handle", None)),
            )
            return False
        return True

    # -- labels --------------------------------------------------------------

    def check_label(self, host: str, uri: str, signature_ok: bool) -> bool:
        self._checked("label")
        if not signature_ok:
            self.quarantine(host, KIND_LABEL_SIGNATURE, uri, "label signature failed")
            return False
        return True

    # -- listRepos rows ------------------------------------------------------

    def check_identifier(self, host: str, did: str, head: str, rev: str) -> bool:
        """Validate one listRepos row (parseable head CID, valid rev TID)."""
        self._checked("identifier")
        try:
            Cid.parse(head)
        except ValueError as exc:
            self.quarantine(host, KIND_IDENTIFIER, did, "bad head: %s" % exc)
            return False
        if not isinstance(rev, str) or not Tid.is_valid(rev):
            self.quarantine(host, KIND_IDENTIFIER, did, "bad rev: %r" % (rev,))
            return False
        return True

    # -- record URIs ---------------------------------------------------------

    def check_record_uri(self, host: str, uri: str) -> bool:
        self._checked("record-uri")
        if not isinstance(uri, str) or not uri.startswith("at://"):
            self.quarantine(host, KIND_RECORD_URI, str(uri), "not an at:// URI")
            return False
        rest = uri[len("at://") :]
        parts = rest.split("/")
        if len(parts) != 3 or not all(parts):
            self.quarantine(host, KIND_RECORD_URI, uri, "URI must be did/collection/rkey")
            return False
        return True

"""DID Documents and FQDN Handles dataset (Section 3).

Downloads the DID document for every identifier — from the PLC directory
for ``did:plc`` (the paper took a full snapshot of plc.directory) and via
``https://<fqdn>/.well-known/did.json`` for ``did:web`` — and extracts the
FQDN handles, PDS endpoints, and labeler endpoints used downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.identity.plc import PlcDirectory
from repro.identity.resolver import DidResolver


@dataclass
class DidDocumentRow:
    did: str
    method: str  # "plc" | "web"
    handle: Optional[str]
    pds_endpoint: Optional[str]
    labeler_endpoint: Optional[str]


@dataclass
class DidDocumentDataset:
    time_us: int = 0
    documents: dict[str, DidDocumentRow] = field(default_factory=dict)
    failed: set[str] = field(default_factory=set)  # identifiers with no doc

    def __len__(self) -> int:
        return len(self.documents)

    def handles(self) -> list[str]:
        return [row.handle for row in self.documents.values() if row.handle]

    def did_web_rows(self) -> list[DidDocumentRow]:
        return [row for row in self.documents.values() if row.method == "web"]

    def handle_of(self, did: str) -> Optional[str]:
        row = self.documents.get(did)
        return row.handle if row else None


class DidDocumentCollector:
    """Bulk DID-document downloader."""

    def __init__(self, resolver: DidResolver):
        self.resolver = resolver
        self.dataset = DidDocumentDataset()

    def crawl(self, dids: Iterable[str], now_us: int) -> DidDocumentDataset:
        self.dataset.time_us = now_us
        for did in dids:
            doc = self.resolver.resolve(did)
            if doc is None:
                # Tombstoned or unresolvable — the paper likewise obtained
                # fewer documents (5.08M) than identifiers (5.59M).
                self.dataset.failed.add(did)
                continue
            self.dataset.documents[did] = DidDocumentRow(
                did=did,
                method=did.split(":", 2)[1],
                handle=doc.handle,
                pds_endpoint=doc.pds_endpoint,
                labeler_endpoint=doc.labeler_endpoint,
            )
        return self.dataset

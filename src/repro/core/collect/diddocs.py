"""DID Documents and FQDN Handles dataset (Section 3).

Downloads the DID document for every identifier — from the PLC directory
for ``did:plc`` (the paper took a full snapshot of plc.directory) and via
``https://<fqdn>/.well-known/did.json`` for ``did:web`` — and extracts the
FQDN handles, PDS endpoints, and labeler endpoints used downstream.

Resolution goes over the network in the real study, so an optional
:class:`~repro.netsim.faults.FaultInjector` can make it flaky; the
collector retries transient failures with the shared backoff policy and
only records a DID as failed when the resolver truly has no document.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.identity.plc import PlcDirectory
from repro.identity.resolver import DidResolver
from repro.netsim.faults import DEFAULT_RETRY_POLICY, TARGET_IDENTITY, retry_jitter_rng
from repro.obs.telemetry import NULL_TELEMETRY
from repro.services.xrpc import XrpcError


@dataclass
class DidDocumentRow:
    did: str
    method: str  # "plc" | "web"
    handle: Optional[str]
    pds_endpoint: Optional[str]
    labeler_endpoint: Optional[str]


@dataclass
class DidDocumentDataset:
    time_us: int = 0
    documents: dict[str, DidDocumentRow] = field(default_factory=dict)
    failed: set[str] = field(default_factory=set)  # identifiers with no doc
    # Documents rejected by the integrity cross-check (claimed PDS does
    # not host the DID); accounted in the integrity report, never ingested.
    quarantined: set[str] = field(default_factory=set)
    # Resolution attempts that hit an injected transient error and were
    # retried; ``unresolved_transient`` counts DIDs abandoned only because
    # every retry failed (distinct from genuinely tombstoned DIDs).
    transient_retries: int = 0
    unresolved_transient: int = 0

    def __len__(self) -> int:
        return len(self.documents)

    def handles(self) -> list[str]:
        return [row.handle for row in self.documents.values() if row.handle]

    def did_web_rows(self) -> list[DidDocumentRow]:
        return [row for row in self.documents.values() if row.method == "web"]

    def handle_of(self, did: str) -> Optional[str]:
        row = self.documents.get(did)
        return row.handle if row else None


class DidDocumentCollector:
    """Bulk DID-document downloader."""

    def __init__(
        self,
        resolver: DidResolver,
        injector=None,
        retry_policy=None,
        adversary=None,
        integrity=None,
        host_of=None,
        on_progress=None,
        telemetry=None,
    ):
        self.resolver = resolver
        self.injector = injector
        self.retry_policy = retry_policy if retry_policy is not None else DEFAULT_RETRY_POLICY
        # ``adversary`` tampers resolved documents in flight (a poisoned
        # directory response); ``integrity`` cross-checks every document's
        # claimed PDS against that PDS's own listRepos membership and
        # quarantines mismatches, attributed via ``host_of`` to the DID's
        # actual hosting PDS.
        self.adversary = adversary
        self.integrity = integrity
        self.host_of = host_of
        self.on_progress = on_progress
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.dataset = DidDocumentDataset()

    def crawl(self, dids: Iterable[str], now_us: int) -> DidDocumentDataset:
        with self.telemetry.tracer.span("diddoc-crawl", cat="collector"):
            return self._crawl(dids, now_us)

    def _crawl(self, dids: Iterable[str], now_us: int) -> DidDocumentDataset:
        data = self.dataset
        data.time_us = now_us
        virtual_now = now_us
        for did in dids:
            if did in data.documents or did in data.failed or did in data.quarantined:
                continue  # resume: this DID is already accounted for
            resolved, virtual_now = self._resolve_with_retries(did, virtual_now)
            if resolved is None:
                data.failed.add(did)
                continue
            doc = resolved[0]
            if doc is None:
                # Tombstoned or unresolvable — the paper likewise obtained
                # fewer documents (5.08M) than identifiers (5.59M).
                data.failed.add(did)
                continue
            if self.adversary is not None:
                doc = self.adversary.tamper_diddoc(did, doc)
            if self.integrity is not None:
                host = self.host_of(did) if self.host_of is not None else did
                if not self.integrity.check_diddoc(host, did, doc):
                    data.quarantined.add(did)
                    if self.on_progress is not None:
                        self.on_progress("diddoc:%s" % did)
                    continue
            data.documents[did] = DidDocumentRow(
                did=did,
                method=did.split(":", 2)[1],
                handle=doc.handle,
                pds_endpoint=doc.pds_endpoint,
                labeler_endpoint=doc.labeler_endpoint,
            )
            if self.on_progress is not None:
                self.on_progress("diddoc:%s" % did)
        return self.dataset

    def _resolve_with_retries(self, did: str, now_us: int):
        """Resolve one DID behind the fault gate.

        Returns ``((doc,), now_us)`` on a completed lookup (doc may be
        None for tombstones) or ``(None, now_us)`` when injected transient
        failures exhausted the retry budget.
        """
        attempt = 0
        retry_rng = retry_jitter_rng("diddocs", now_us, did)
        while True:
            attempt += 1
            if self.injector is not None:
                try:
                    self.injector.raise_transient(TARGET_IDENTITY, now_us)
                except XrpcError:
                    if attempt >= self.retry_policy.max_attempts:
                        self.dataset.unresolved_transient += 1
                        return None, now_us
                    self.dataset.transient_retries += 1
                    now_us += self.retry_policy.backoff_us(attempt, retry_rng)
                    continue
            return (self.resolver.resolve(did),), now_us

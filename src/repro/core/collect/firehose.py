"""Firehose Dataset (Section 3, Table 1).

A live subscription to the Relay's event stream: counts every event type,
keeps a compact log of record operations, remembers post-creation times
(the reference point for labeler reaction-time analysis), and records
handle updates and tombstones.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.atproto.events import (
    KIND_COMMIT,
    CommitEvent,
    FirehoseEvent,
    HandleEvent,
    IdentityEvent,
    TombstoneEvent,
)


@dataclass
class FirehoseDataset:
    start_us: int = 0
    end_us: int = 0  # time of the newest event observed
    bytes_received: int = 0  # approximate wire volume of the stream
    event_counts: Counter = field(default_factory=Counter)  # kind -> count
    op_counts: Counter = field(default_factory=Counter)  # (collection, action)
    # uri -> creation time; reference for reaction-time measurements.
    post_created_us: dict[str, int] = field(default_factory=dict)
    # collection NSIDs that no Bluesky lexicon covers.
    non_bsky_ops: Counter = field(default_factory=Counter)
    handle_updates: list[tuple[int, str, str]] = field(default_factory=list)
    tombstoned_dids: list[tuple[int, str]] = field(default_factory=list)
    feed_generator_records: set = field(default_factory=set)  # uris
    labeler_service_dids: set = field(default_factory=set)

    def total_events(self) -> int:
        return sum(self.event_counts.values())

    def event_shares(self) -> dict[str, float]:
        total = self.total_events()
        if total == 0:
            return {}
        return {kind: count / total for kind, count in self.event_counts.items()}


class FirehoseCollector:
    """Subscribes to the firehose; attach before the world runs."""

    def __init__(self, start_us: int = 0):
        self.start_us = start_us
        self.dataset = FirehoseDataset(start_us=start_us)

    def attach(self, world) -> None:
        world.add_firehose_observer(self.consume, start_us=self.start_us)

    def consume(self, event: FirehoseEvent) -> None:
        data = self.dataset
        data.event_counts[event.kind] += 1
        data.end_us = max(data.end_us, event.time_us)
        data.bytes_received += _approximate_frame_bytes(event)
        if isinstance(event, CommitEvent):
            for op in event.ops:
                collection = op.collection
                data.op_counts[(collection, op.action)] += 1
                if collection == "app.bsky.feed.post" and op.action == "create":
                    data.post_created_us["at://%s/%s" % (event.did, op.path)] = event.time_us
                elif collection == "app.bsky.feed.generator" and op.action == "create":
                    data.feed_generator_records.add("at://%s/%s" % (event.did, op.path))
                elif collection == "app.bsky.labeler.service":
                    data.labeler_service_dids.add(event.did)
                if not collection.startswith("app.bsky.") and not collection.startswith(
                    "chat.bsky."
                ):
                    data.non_bsky_ops[collection] += 1
        elif isinstance(event, HandleEvent):
            data.handle_updates.append((event.time_us, event.did, event.handle))
        elif isinstance(event, TombstoneEvent):
            data.tombstoned_dids.append((event.time_us, event.did))


# Per-op overhead for the MST diff blocks that accompany commits on the
# real wire but are not part of our compact frames.  At the production
# network's scale a commit proof path traverses ~a dozen MST nodes of
# roughly 0.5 KB each (the paper's ~30 GB/day over ~4.3M events/day puts
# the average frame near 7 KB).
_MST_DIFF_OVERHEAD = 6000


def _approximate_frame_bytes(event: FirehoseEvent) -> int:
    """Wire size of one firehose frame.

    Used for the Section 9 scalability estimate ("the Firehose already
    outputs ≈30GB of data per day per subscribed client").  The frame
    itself is measured exactly via the event's lazily-encoded, cached wire
    frame; the MST diff blocks the real stream ships alongside each commit
    are added as a fixed per-op overhead.
    """
    try:
        size = event.wire_size()
    except ValueError:
        size = 256
    if isinstance(event, CommitEvent):
        size += _MST_DIFF_OVERHEAD * len(event.ops)
    return size

"""Firehose Dataset (Section 3, Table 1).

A live subscription to the Relay's event stream: counts every event type,
keeps a compact log of record operations, remembers post-creation times
(the reference point for labeler reaction-time analysis), and records
handle updates and tombstones.

The collector is *resilient*: when a fault plan drops its subscription it
loses the frames published on the dead connection, notices on the next
delivery attempt, and resumes via ``com.atproto.sync.subscribeRepos`` with
its last-seen cursor — retrying transient errors with backoff.  If the
cursor has fallen out of the relay's retention window, the replay starts
with an ``#info``/``OutdatedCursor`` frame; the collector records the gap
(oldest available seq + dropped-event count) instead of pretending the
stream was continuous (Section 2's "slow subscriber" failure mode).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.atproto.events import (
    KIND_INFO,
    CommitEvent,
    FirehoseEvent,
    HandleEvent,
    InfoEvent,
    TombstoneEvent,
)
from repro.netsim.faults import (
    DEFAULT_RETRY_POLICY,
    FaultPlan,
    RetryPolicy,
    call_with_retries,
    retry_jitter_rng,
)
from repro.obs.telemetry import NULL_TELEMETRY
from repro.services.xrpc import XrpcError


@dataclass(frozen=True)
class FirehoseGap:
    """One detected retention gap: events lost for good."""

    time_us: int  # when the gap was detected (reconnect time)
    resume_cursor: int  # the cursor the collector tried to resume from
    oldest_available_seq: Optional[int]
    dropped: int  # events between cursor and the oldest available one


@dataclass
class FirehoseDataset:
    start_us: int = 0
    end_us: int = 0  # time of the newest event observed
    bytes_received: int = 0  # approximate wire volume of the stream
    event_counts: Counter = field(default_factory=Counter)  # kind -> count
    op_counts: Counter = field(default_factory=Counter)  # (collection, action)
    # uri -> creation time; reference for reaction-time measurements.
    post_created_us: dict[str, int] = field(default_factory=dict)
    # collection NSIDs that no Bluesky lexicon covers.
    non_bsky_ops: Counter = field(default_factory=Counter)
    handle_updates: list[tuple[int, str, str]] = field(default_factory=list)
    tombstoned_dids: list[tuple[int, str]] = field(default_factory=list)
    feed_generator_records: set = field(default_factory=set)  # uris
    labeler_service_dids: set = field(default_factory=set)
    # -- resilience accounting -------------------------------------------------
    disconnects: int = 0  # times the live subscription died
    reconnects: int = 0  # successful cursor-resumes
    replayed_events: int = 0  # events recovered via subscribeRepos backfill
    gaps: list[FirehoseGap] = field(default_factory=list)  # unrecoverable holes
    dropped_events: int = 0  # sum of gap sizes (the paper's lost-data case)

    def total_events(self) -> int:
        return sum(self.event_counts.values())

    def event_shares(self) -> dict[str, float]:
        total = self.total_events()
        if total == 0:
            return {}
        return {kind: count / total for kind, count in self.event_counts.items()}


class FirehoseCollector:
    """Subscribes to the firehose; attach before the world runs.

    ``fault_plan`` (optional) carries the disconnect windows the collector
    must survive; ``services``/``relay_url`` give it the sync endpoint to
    cursor-resume through (faults and retries apply there like for any
    other crawler).  Without a plan the collector behaves exactly like a
    plain live subscriber.
    """

    def __init__(
        self,
        start_us: int = 0,
        services=None,
        relay_url: Optional[str] = None,
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY,
        adversary=None,
        integrity=None,
        on_progress=None,
        telemetry=None,
    ):
        self.start_us = start_us
        self.services = services
        self.relay_url = relay_url
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy
        self.adversary = adversary
        self.integrity = integrity
        self.on_progress = on_progress
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.dataset = FirehoseDataset(start_us=start_us)
        self.cursor = 0  # seq of the newest event ingested
        self.retry_counters: Counter = Counter()
        self._connected = True
        self._relay = None  # direct fallback when no service directory is wired
        self._fault_seed = fault_plan.seed if fault_plan else 0
        # Live counters mirror the dataset's bookkeeping at the same
        # guarded sites, so they inherit its exactly-once semantics
        # across disconnects, replays, and checkpoint resumes.
        registry = self.telemetry.registry
        self._m_events = registry.counter("firehose_events_total", ("kind",))
        self._m_ops = registry.counter("firehose_ops_total", ("collection", "action"))
        self._m_bytes = registry.counter("firehose_bytes_total")
        self._m_disconnects = registry.counter("firehose_disconnects_total")
        self._m_reconnects = registry.counter("firehose_reconnects_total")
        self._m_replayed = registry.counter("firehose_replayed_total")

    def attach(self, world) -> None:
        if self.services is None:
            self.services = world.services
        if self.relay_url is None:
            self.relay_url = world.relay.url
        self._relay = world.relay
        world.add_firehose_observer(self.consume, start_us=self.start_us)

    # -- live path -------------------------------------------------------------

    def consume(self, event: FirehoseEvent) -> None:
        if event.seq and event.seq <= self.cursor:
            # Already ingested.  On a checkpoint-resumed run the world
            # replays the whole simulation, so every pre-checkpoint frame
            # is delivered again; skipping here keeps all bookkeeping
            # (fault windows, corruption draws, counters) exactly-once.
            return
        if self.fault_plan is not None and self.fault_plan.is_disconnected(event.time_us):
            # The frame is lost on the dead connection.  Count the drop
            # once per window; the backlog is recovered on reconnect.
            if self._connected:
                self._connected = False
                self.dataset.disconnects += 1
                self._m_disconnects.inc()
            return
        if not self._connected:
            # First delivery attempt after the window: reconnect and
            # replay everything missed (including this event, which is
            # already in the relay's buffer).
            self._resume(event.time_us)
            return
        if self.adversary is not None and self.relay_url is not None:
            garbage = self.adversary.corrupt_frame(event.seq, self.relay_url)
            if garbage is not None:
                # The wire delivered a torn frame.  It cannot decode, so
                # it is quarantined (attributed to the relay) and treated
                # like a dead connection: the intact event is recovered
                # from the relay's buffer on the next cursor-resume.
                if self.integrity is not None:
                    self.integrity.check_frame_bytes(self.relay_url, event.seq, garbage)
                self._connected = False
                self.dataset.disconnects += 1
                self._m_disconnects.inc()
                return
        if self._ingest(event) and self.on_progress is not None:
            self.on_progress("firehose:seq:%d" % event.seq)

    # -- cursor resume ---------------------------------------------------------

    def _resume(self, now_us: int) -> None:
        """Reconnect via subscribeRepos(cursor); stay disconnected on failure."""
        with self.telemetry.tracer.span(
            "firehose-resume", cat="firehose", args={"cursor": self.cursor}
        ):
            try:
                events, _ = call_with_retries(
                    self.services,
                    self.relay_url,
                    "com.atproto.sync.subscribeRepos",
                    now_us=now_us,
                    policy=self.retry_policy,
                    rng=retry_jitter_rng(
                        "firehose:%d" % self._fault_seed, now_us, str(self.cursor)
                    ),
                    counters=self.retry_counters,
                    cursor=self.cursor,
                )
            except XrpcError:
                # Still down after retries; the next live frame tries again.
                return
            self._connected = True
            self.dataset.reconnects += 1
            self._m_reconnects.inc()
            for event in events:
                replayed = self._ingest(event, replay=True)
                if replayed:
                    self.dataset.replayed_events += 1
                    self._m_replayed.inc()

    def backfill(self, now_us: int) -> None:
        """Final catch-up (end of the collection window).

        Covers a disconnect window that extends past the last published
        event: no live frame arrives to trigger the resume path, so the
        pipeline calls this explicitly before closing the dataset.
        """
        if self._connected:
            return
        self._resume(now_us)

    # -- ingestion ---------------------------------------------------------------

    def _ingest(self, event: FirehoseEvent, replay: bool = False) -> bool:
        """Account one frame; returns True if it advanced the dataset."""
        if isinstance(event, InfoEvent) or event.kind == KIND_INFO:
            # Out-of-band gap notice: events between our cursor and the
            # oldest buffered seq are gone for good.  Only meaningful once
            # we have consumed something (a cold start replays history we
            # never claimed to have).
            if self.cursor > 0 and event.dropped > 0:
                self.dataset.gaps.append(
                    FirehoseGap(
                        time_us=event.time_us,
                        resume_cursor=self.cursor,
                        oldest_available_seq=event.oldest_seq,
                        dropped=event.dropped,
                    )
                )
                self.dataset.dropped_events += event.dropped
            return False
        if event.seq <= self.cursor:
            return False  # already seen (replay overlap)
        if event.time_us < self.start_us:
            # Replay reaching before our subscription start: advance the
            # cursor but keep pre-window events out of the dataset, so a
            # resumed run counts exactly what a live one would have.
            self.cursor = event.seq
            return False
        self.cursor = event.seq
        data = self.dataset
        data.event_counts[event.kind] += 1
        self._m_events.inc((event.kind,))
        data.end_us = max(data.end_us, event.time_us)
        frame_bytes = _approximate_frame_bytes(event)
        data.bytes_received += frame_bytes
        self._m_bytes.inc((), frame_bytes)
        tracer = self.telemetry.tracer
        if tracer.enabled:
            tracer.instant(
                "frame", "firehose-frame", args={"seq": event.seq, "kind": event.kind}
            )
        if isinstance(event, CommitEvent):
            for op in event.ops:
                collection = op.collection
                data.op_counts[(collection, op.action)] += 1
                self._m_ops.inc((collection, op.action))
                if collection == "app.bsky.feed.post" and op.action == "create":
                    data.post_created_us["at://%s/%s" % (event.did, op.path)] = event.time_us
                elif collection == "app.bsky.feed.generator" and op.action == "create":
                    data.feed_generator_records.add("at://%s/%s" % (event.did, op.path))
                elif collection == "app.bsky.labeler.service":
                    # Track creates *and* deletes: a retired labeler must
                    # leave the announced set, not linger forever.
                    if op.action == "delete":
                        data.labeler_service_dids.discard(event.did)
                    else:
                        data.labeler_service_dids.add(event.did)
                if not collection.startswith("app.bsky.") and not collection.startswith(
                    "chat.bsky."
                ):
                    data.non_bsky_ops[collection] += 1
        elif isinstance(event, HandleEvent):
            data.handle_updates.append((event.time_us, event.did, event.handle))
        elif isinstance(event, TombstoneEvent):
            data.tombstoned_dids.append((event.time_us, event.did))
        return True


# Per-op overhead for the MST diff blocks that accompany commits on the
# real wire but are not part of our compact frames.  At the production
# network's scale a commit proof path traverses ~a dozen MST nodes of
# roughly 0.5 KB each (the paper's ~30 GB/day over ~4.3M events/day puts
# the average frame near 7 KB).
_MST_DIFF_OVERHEAD = 6000


def _approximate_frame_bytes(event: FirehoseEvent) -> int:
    """Wire size of one firehose frame.

    Used for the Section 9 scalability estimate ("the Firehose already
    outputs ≈30GB of data per day per subscribed client").  The frame
    itself is measured exactly via the event's lazily-encoded, cached wire
    frame; the MST diff blocks the real stream ships alongside each commit
    are added as a fixed per-op overhead.
    """
    try:
        size = event.wire_size()
    except ValueError:
        size = 256
    if isinstance(event, CommitEvent):
        size += _MST_DIFF_OVERHEAD * len(event.ops)
    return size

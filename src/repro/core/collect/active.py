"""Active measurements (Section 5).

Three probes the paper ran from university machines:

* handle-ownership verification — for every non-``bsky.social`` FQDN
  handle, check the ``_atproto.`` DNS TXT record, then the
  ``/.well-known/atproto-did`` file (98.7% / 1.3% split);
* a WHOIS scan of the registered domains (92% answered; IANA IDs for 76%);
* a Tranco top-1M cross-reference of registered domains (2.8% ranked).
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.identity.handles import HandleResolver
from repro.netsim.faults import DEFAULT_RETRY_POLICY, TARGET_DNS, TARGET_WHOIS
from repro.netsim.psl import PublicSuffixList
from repro.netsim.tranco import TrancoList
from repro.netsim.whois import WhoisService
from repro.services.xrpc import XrpcError


@dataclass
class HandleProbeRow:
    handle: str
    did: Optional[str]
    mechanism: Optional[str]  # "dns-txt" | "well-known" | None


@dataclass
class WhoisRow:
    domain: str
    responded: bool
    registrar_name: Optional[str] = None
    iana_id: Optional[int] = None


@dataclass
class ActiveMeasurementDataset:
    handle_probes: list[HandleProbeRow] = field(default_factory=list)
    whois_rows: list[WhoisRow] = field(default_factory=list)
    registered_domains: list[str] = field(default_factory=list)
    tranco_ranked: set = field(default_factory=set)
    # Injected transient failures absorbed by retrying, and probes given
    # up on only because every retry failed.
    transient_retries: int = 0
    probes_exhausted: int = 0

    def mechanism_counts(self) -> Counter:
        return Counter(
            row.mechanism for row in self.handle_probes if row.mechanism is not None
        )

    def whois_response_rate(self) -> float:
        if not self.whois_rows:
            return 0.0
        return sum(1 for r in self.whois_rows if r.responded) / len(self.whois_rows)

    def iana_id_rate(self) -> float:
        if not self.whois_rows:
            return 0.0
        return sum(1 for r in self.whois_rows if r.iana_id is not None) / len(self.whois_rows)

    def registrar_counts(self) -> Counter:
        return Counter(
            (r.iana_id, r.registrar_name)
            for r in self.whois_rows
            if r.iana_id is not None
        )


class ActiveMeasurements:
    """Runs the three probe campaigns."""

    def __init__(
        self,
        handle_resolver: HandleResolver,
        whois: WhoisService,
        tranco: TrancoList,
        psl: PublicSuffixList,
        injector=None,
        retry_policy=None,
    ):
        self.handle_resolver = handle_resolver
        self.whois = whois
        self.tranco = tranco
        self.psl = psl
        self.injector = injector
        self.retry_policy = retry_policy if retry_policy is not None else DEFAULT_RETRY_POLICY
        self.dataset = ActiveMeasurementDataset()
        self._retry_rng = random.Random(0xAC71)
        self._now_us = 0  # advances with retry backoffs across a campaign

    def _gate(self, target: str) -> bool:
        """Pass one probe through the fault injector, retrying transients.

        Returns False only when every retry failed — the probe is then
        recorded the same way a genuinely unanswered one would be.
        """
        if self.injector is None:
            return True
        attempt = 0
        while True:
            attempt += 1
            try:
                self.injector.raise_transient(target, self._now_us)
            except XrpcError:
                if attempt >= self.retry_policy.max_attempts:
                    self.dataset.probes_exhausted += 1
                    return False
                self.dataset.transient_retries += 1
                self._now_us += self.retry_policy.backoff_us(attempt, self._retry_rng)
                continue
            return True

    def probe_handles(self, handles: Iterable[str], now_us: int = 0) -> None:
        """Verify ownership mechanisms for (non-bsky.social) handles."""
        self._now_us = max(self._now_us, now_us)
        for handle in handles:
            if not self._gate(TARGET_DNS):
                self.dataset.handle_probes.append(HandleProbeRow(handle, None, None))
                continue
            try:
                probe = self.handle_resolver.probe(handle)
            except ValueError:
                self.dataset.handle_probes.append(HandleProbeRow(handle, None, None))
                continue
            self.dataset.handle_probes.append(
                HandleProbeRow(handle, probe.did, probe.mechanism)
            )

    def extract_registered_domains(self, handles: Iterable[str]) -> list[str]:
        """Registered (effective second-level) domains via the PSL."""
        seen: dict[str, None] = {}
        for handle in handles:
            try:
                registered = self.psl.registered_domain(handle)
            except ValueError:
                continue
            if registered is not None:
                seen.setdefault(registered, None)
        self.dataset.registered_domains = list(seen)
        return self.dataset.registered_domains

    def scan_whois(self, domains: Optional[Iterable[str]] = None, now_us: int = 0) -> None:
        self._now_us = max(self._now_us, now_us)
        targets = list(domains) if domains is not None else self.dataset.registered_domains
        for domain in targets:
            if not self._gate(TARGET_WHOIS):
                self.dataset.whois_rows.append(WhoisRow(domain, responded=False))
                continue
            record = self.whois.query(domain)
            if record is None:
                self.dataset.whois_rows.append(WhoisRow(domain, responded=False))
            else:
                self.dataset.whois_rows.append(
                    WhoisRow(
                        domain,
                        responded=True,
                        registrar_name=record.registrar_name,
                        iana_id=record.iana_id,
                    )
                )

    def cross_reference_tranco(self, domains: Optional[Iterable[str]] = None) -> set:
        targets = list(domains) if domains is not None else self.dataset.registered_domains
        ranked = {domain for domain in targets if self.tranco.in_top(domain)}
        self.dataset.tranco_ranked = ranked
        return ranked

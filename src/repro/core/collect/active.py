"""Active measurements (Section 5).

Three probes the paper ran from university machines:

* handle-ownership verification — for every non-``bsky.social`` FQDN
  handle, check the ``_atproto.`` DNS TXT record, then the
  ``/.well-known/atproto-did`` file (98.7% / 1.3% split);
* a WHOIS scan of the registered domains (92% answered; IANA IDs for 76%);
* a Tranco top-1M cross-reference of registered domains (2.8% ranked).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.identity.handles import HandleResolver
from repro.netsim.faults import (
    DEFAULT_RETRY_POLICY,
    TARGET_DNS,
    TARGET_WHOIS,
    retry_jitter_rng,
)
from repro.netsim.psl import PublicSuffixList
from repro.obs.telemetry import NULL_TELEMETRY
from repro.netsim.tranco import TrancoList
from repro.netsim.whois import WhoisService
from repro.services.xrpc import XrpcError


@dataclass
class HandleProbeRow:
    handle: str
    did: Optional[str]
    mechanism: Optional[str]  # "dns-txt" | "well-known" | None


@dataclass
class WhoisRow:
    domain: str
    responded: bool
    registrar_name: Optional[str] = None
    iana_id: Optional[int] = None


@dataclass
class ActiveMeasurementDataset:
    handle_probes: list[HandleProbeRow] = field(default_factory=list)
    whois_rows: list[WhoisRow] = field(default_factory=list)
    registered_domains: list[str] = field(default_factory=list)
    tranco_ranked: set = field(default_factory=set)
    # Injected transient failures absorbed by retrying, and probes given
    # up on only because every retry failed.
    transient_retries: int = 0
    probes_exhausted: int = 0

    def mechanism_counts(self) -> Counter:
        return Counter(
            row.mechanism for row in self.handle_probes if row.mechanism is not None
        )

    def whois_response_rate(self) -> float:
        if not self.whois_rows:
            return 0.0
        return sum(1 for r in self.whois_rows if r.responded) / len(self.whois_rows)

    def iana_id_rate(self) -> float:
        if not self.whois_rows:
            return 0.0
        return sum(1 for r in self.whois_rows if r.iana_id is not None) / len(self.whois_rows)

    def registrar_counts(self) -> Counter:
        return Counter(
            (r.iana_id, r.registrar_name)
            for r in self.whois_rows
            if r.iana_id is not None
        )


class ActiveMeasurements:
    """Runs the three probe campaigns."""

    def __init__(
        self,
        handle_resolver: HandleResolver,
        whois: WhoisService,
        tranco: TrancoList,
        psl: PublicSuffixList,
        injector=None,
        retry_policy=None,
        adversary=None,
        integrity=None,
        resolve_did_doc=None,
        on_progress=None,
        telemetry=None,
    ):
        self.handle_resolver = handle_resolver
        self.whois = whois
        self.tranco = tranco
        self.psl = psl
        self.injector = injector
        self.retry_policy = retry_policy if retry_policy is not None else DEFAULT_RETRY_POLICY
        # ``adversary`` forges DNS TXT/.well-known answers for poisoned
        # domains; ``integrity`` + ``resolve_did_doc`` run the
        # bidirectional check (handle → DID → document → handle) and
        # quarantine answers that fail it.
        self.adversary = adversary
        self.integrity = integrity
        self.resolve_did_doc = resolve_did_doc
        self.on_progress = on_progress
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.dataset = ActiveMeasurementDataset()
        self._now_us = 0  # advances with retry backoffs across a campaign

    def _gate(self, target: str) -> bool:
        """Pass one probe through the fault injector, retrying transients.

        Returns False only when every retry failed — the probe is then
        recorded the same way a genuinely unanswered one would be.
        """
        if self.injector is None:
            return True
        attempt = 0
        retry_rng = retry_jitter_rng("active:%s" % target, self._now_us)
        while True:
            attempt += 1
            try:
                self.injector.raise_transient(target, self._now_us)
            except XrpcError:
                if attempt >= self.retry_policy.max_attempts:
                    self.dataset.probes_exhausted += 1
                    return False
                self.dataset.transient_retries += 1
                self._now_us += self.retry_policy.backoff_us(attempt, retry_rng)
                continue
            return True

    def probe_handles(self, handles: Iterable[str], now_us: int = 0) -> None:
        """Verify ownership mechanisms for (non-bsky.social) handles."""
        with self.telemetry.tracer.span("handle-probes", cat="collector"):
            self._probe_handles(handles, now_us)

    def _probe_handles(self, handles: Iterable[str], now_us: int = 0) -> None:
        self._now_us = max(self._now_us, now_us)
        probed = {row.handle for row in self.dataset.handle_probes}
        for handle in handles:
            if handle in probed:
                continue  # resume: already probed before the checkpoint
            if not self._gate(TARGET_DNS):
                self.dataset.handle_probes.append(HandleProbeRow(handle, None, None))
                continue
            try:
                probe = self.handle_resolver.probe(handle)
            except ValueError:
                self.dataset.handle_probes.append(HandleProbeRow(handle, None, None))
                continue
            did, mechanism = probe.did, probe.mechanism
            if self.adversary is not None and did is not None:
                forged = self.adversary.forge_handle_answer(handle)
                if forged is not None:
                    did = forged  # the domain's zone answers with a lie
            if self.integrity is not None and did is not None:
                host = self._registered_domain(handle) or handle
                doc = self.resolve_did_doc(did) if self.resolve_did_doc else None
                if not self.integrity.check_handle_bidi(host, handle, did, doc):
                    # The mechanism observation stands (the answer did
                    # arrive via DNS TXT / .well-known) but the claimed
                    # DID is quarantined, not recorded as owned.
                    did = None
            self.dataset.handle_probes.append(HandleProbeRow(handle, did, mechanism))
            if self.on_progress is not None:
                self.on_progress("probe:%s" % handle)

    def _registered_domain(self, handle: str) -> Optional[str]:
        try:
            return self.psl.registered_domain(handle)
        except ValueError:
            return None

    def extract_registered_domains(self, handles: Iterable[str]) -> list[str]:
        """Registered (effective second-level) domains via the PSL."""
        seen: dict[str, None] = {}
        for handle in handles:
            try:
                registered = self.psl.registered_domain(handle)
            except ValueError:
                continue
            if registered is not None:
                seen.setdefault(registered, None)
        self.dataset.registered_domains = list(seen)
        return self.dataset.registered_domains

    def scan_whois(self, domains: Optional[Iterable[str]] = None, now_us: int = 0) -> None:
        with self.telemetry.tracer.span("whois-scan", cat="collector"):
            self._scan_whois(domains, now_us)

    def _scan_whois(self, domains: Optional[Iterable[str]] = None, now_us: int = 0) -> None:
        self._now_us = max(self._now_us, now_us)
        targets = list(domains) if domains is not None else self.dataset.registered_domains
        scanned = {row.domain for row in self.dataset.whois_rows}
        for domain in targets:
            if domain in scanned:
                continue  # resume: already scanned before the checkpoint
            if self.on_progress is not None:
                self.on_progress("whois:%s" % domain)
            if not self._gate(TARGET_WHOIS):
                self.dataset.whois_rows.append(WhoisRow(domain, responded=False))
                continue
            record = self.whois.query(domain)
            if record is None:
                self.dataset.whois_rows.append(WhoisRow(domain, responded=False))
            else:
                self.dataset.whois_rows.append(
                    WhoisRow(
                        domain,
                        responded=True,
                        registrar_name=record.registrar_name,
                        iana_id=record.iana_id,
                    )
                )

    def cross_reference_tranco(self, domains: Optional[Iterable[str]] = None) -> set:
        targets = list(domains) if domains is not None else self.dataset.registered_domains
        ranked = {domain for domain in targets if self.tranco.in_top(domain)}
        self.dataset.tranco_ranked = ranked
        return ranked

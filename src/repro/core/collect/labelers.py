"""Labeling Services dataset (Sections 3 and 6).

Discovers every account announcing itself as a Labeler (service records in
repos + live firehose updates), resolves each one's endpoint from its DID
document, subscribes from sequence zero (labeler streams retain their full
history, so labels emitted before the collection period are recovered),
reconnects daily to backfill, and resolves endpoint IPs for the hosting
analysis.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.identity.resolver import DidResolver
from repro.netsim.dns import DnsRecordType, DnsResolver, DnsError
from repro.netsim.faults import DEFAULT_RETRY_POLICY, call_with_retries, retry_jitter_rng
from repro.obs.telemetry import NULL_TELEMETRY
from repro.services.labeler import Label
from repro.services.xrpc import ServiceDirectory, XrpcError
from repro.simulation.clock import US_PER_DAY


@dataclass
class LabelerStatus:
    did: str
    endpoint: Optional[str] = None
    reachable: bool = False
    ip: Optional[str] = None
    cursor: int = 0
    label_count: int = 0


@dataclass
class LabelerDataset:
    statuses: dict[str, LabelerStatus] = field(default_factory=dict)
    labels: list[Label] = field(default_factory=list)
    signature_failures: int = 0
    # Transient subscribe failures absorbed by retrying before the daily
    # reconnect gave up on the endpoint for the day.
    transient_retries: int = 0

    def announced_count(self) -> int:
        return len(self.statuses)

    def functional_count(self) -> int:
        return sum(1 for s in self.statuses.values() if s.reachable)

    def active_count(self) -> int:
        return sum(1 for s in self.statuses.values() if s.label_count > 0)

    def labels_by_source(self) -> dict[str, list[Label]]:
        out: dict[str, list[Label]] = {}
        for label in self.labels:
            out.setdefault(label.src, []).append(label)
        return out


class LabelerCollector:
    """Discovers labelers and drains their streams."""

    def __init__(
        self,
        services: ServiceDirectory,
        resolver: DidResolver,
        dns: DnsResolver,
        verify_signatures: bool = True,
        retry_policy=None,
        integrity=None,
        on_progress=None,
        telemetry=None,
    ):
        self.services = services
        self.resolver = resolver
        self.dns = dns
        self.verify_signatures = verify_signatures
        self.retry_policy = retry_policy if retry_policy is not None else DEFAULT_RETRY_POLICY
        # With an IntegrityMonitor, labels whose signature fails are
        # quarantined (dropped + accounted against the endpoint) instead
        # of being appended alongside the failure counter.
        self.integrity = integrity
        self.on_progress = on_progress
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._verify_keys: dict[str, object] = {}
        self.dataset = LabelerDataset()

    def discover(self, dids) -> None:
        """Register labeler DIDs found in repos or on the firehose.

        Insertion is sorted per batch: callers pass sets as well as
        lists, and the ``statuses`` order decides how label pulls
        interleave — it must not depend on hash-randomized set order.
        """
        for did in sorted(dids):
            if did not in self.dataset.statuses:
                self.dataset.statuses[did] = LabelerStatus(did=did)

    def connect_and_backfill(self, now_us: int) -> int:
        """(Re)connect to every known labeler and pull new labels."""
        with self.telemetry.tracer.span("labeler-backfill", cat="collector"):
            return self._connect_and_backfill(now_us)

    def _connect_and_backfill(self, now_us: int) -> int:
        pulled = 0
        retry_rng = retry_jitter_rng("labelers", now_us)
        for status in self.dataset.statuses.values():
            if status.endpoint is None:
                doc = self.resolver.resolve(status.did)
                if doc is not None:
                    status.endpoint = doc.labeler_endpoint
            if status.endpoint is None:
                continue
            counters: Counter = Counter()
            try:
                labels, _ = call_with_retries(
                    self.services,
                    status.endpoint,
                    "com.atproto.label.subscribeLabels",
                    now_us=now_us,
                    policy=self.retry_policy,
                    rng=retry_rng,
                    counters=counters,
                    cursor=status.cursor,
                )
            except XrpcError as exc:
                self.dataset.transient_retries += counters["retries"]
                if self.retry_policy.is_retryable(exc.status):
                    continue  # endpoint down today; retry on next reconnect
                raise
            self.dataset.transient_retries += counters["retries"]
            status.reachable = True
            self._resolve_ip(status)
            for label in labels:
                if label.cts > now_us:
                    # The stream has not produced this label yet at the
                    # time of this reconnect; stop and resume next time.
                    break
                if self.verify_signatures and not self._signature_ok(label):
                    if self.integrity is not None:
                        # Quarantine: advance the cursor past the bad
                        # label (re-pulling it would fail identically)
                        # but keep it out of the dataset.
                        self.integrity.check_label(status.endpoint, label.uri, False)
                        self.dataset.signature_failures += 1
                        status.cursor = label.seq
                        continue
                    self.dataset.signature_failures += 1
                elif self.integrity is not None and label.sig:
                    self.integrity.check_label(status.endpoint, label.uri, True)
                self.dataset.labels.append(label)
                status.cursor = label.seq
                status.label_count += 1
                pulled += 1
                if self.on_progress is not None:
                    self.on_progress("label:%s:%d" % (status.did, label.seq))
        return pulled

    def _signature_ok(self, label: Label) -> bool:
        """Verify a label against its labeler's published signing key.

        Unsigned labels pass (signatures are optional in the wild); signed
        labels must verify against the DID document's key.
        """
        if not label.sig:
            return True
        key = self._verify_keys.get(label.src)
        if key is None:
            doc = self.resolver.resolve(label.src)
            if doc is None or doc.signing_key is None:
                return False
            from repro.atproto.keys import public_key_from_did_key

            key = public_key_from_did_key(doc.signing_key)
            self._verify_keys[label.src] = key
        return key.verify(label.signed_payload(), label.sig)

    def _resolve_ip(self, status: LabelerStatus) -> None:
        if status.ip is not None or status.endpoint is None:
            return
        host = status.endpoint.split("://", 1)[-1].split("/", 1)[0]
        try:
            addresses = self.dns.lookup(host, DnsRecordType.A)
        except DnsError:
            return
        if addresses:
            status.ip = addresses[0]

    def schedule_daily_reconnects(self, world, start_us: int, end_us: int) -> None:
        """The paper reconnected to service endpoints on a daily basis."""
        t = start_us
        while t < end_us:
            world.schedule(t, lambda now_us: self.connect_and_backfill(now_us))
            t += US_PER_DAY

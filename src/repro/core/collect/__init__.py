"""Dataset collectors (Section 3 of the paper)."""

from repro.core.collect.identifiers import ListReposCollector, UserIdentifierDataset
from repro.core.collect.diddocs import DidDocumentCollector, DidDocumentDataset
from repro.core.collect.repos import RepositoriesCollector, RepositoriesDataset
from repro.core.collect.firehose import FirehoseCollector, FirehoseDataset
from repro.core.collect.labelers import LabelerCollector, LabelerDataset
from repro.core.collect.feedgens import FeedGeneratorCollector, FeedGeneratorDataset
from repro.core.collect.active import ActiveMeasurements, ActiveMeasurementDataset

__all__ = [
    "ActiveMeasurementDataset",
    "ActiveMeasurements",
    "DidDocumentCollector",
    "DidDocumentDataset",
    "FeedGeneratorCollector",
    "FeedGeneratorDataset",
    "FirehoseCollector",
    "FirehoseDataset",
    "LabelerCollector",
    "LabelerDataset",
    "ListReposCollector",
    "RepositoriesCollector",
    "RepositoriesDataset",
    "UserIdentifierDataset",
]

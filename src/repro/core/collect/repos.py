"""Repositories Dataset (Section 3).

Downloads a snapshot of every user's repository via the Relay's
``com.atproto.sync.getRepo`` (served from the Relay cache, so self-hosted
PDSes are never loaded — the recommended, ethics-friendly method the paper
used) and reduces each record to a compact analysis row.
"""

from __future__ import annotations

import datetime
import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.atproto.lexicon import (
    BLOCK,
    FEED_GENERATOR,
    FOLLOW,
    LABELER_SERVICE,
    LIKE,
    POST,
    PROFILE,
    REPOST,
)
from repro.atproto.repo import import_car
from repro.obs.telemetry import NULL_TELEMETRY
from repro.services.xrpc import ServiceDirectory, XrpcError


def parse_created_at_us(text: str) -> Optional[int]:
    """Parse a record's createdAt into epoch microseconds.

    Returns None for unparseable strings.  Pre-epoch timestamps (the
    "1185" bug the paper reported) come back negative.
    """
    if not text:
        return None
    try:
        moment = datetime.datetime.fromisoformat(text.replace("Z", "+00:00"))
    except ValueError:
        return None
    if moment.tzinfo is None:
        moment = moment.replace(tzinfo=datetime.timezone.utc)
    epoch = datetime.datetime(1970, 1, 1, tzinfo=datetime.timezone.utc)
    return int((moment - epoch).total_seconds() * 1_000_000)


@dataclass
class PostRow:
    did: str
    rkey: str
    created_us: Optional[int]
    created_year: int
    lang: Optional[str]
    has_media: bool


@dataclass
class SubjectRow:
    did: str
    created_us: Optional[int]
    subject: str


@dataclass
class FeedGenRow:
    did: str
    rkey: str
    created_us: Optional[int]
    service_did: str
    display_name: str
    description: str

    @property
    def uri(self) -> str:
        return "at://%s/app.bsky.feed.generator/%s" % (self.did, self.rkey)


@dataclass
class RepositoriesDataset:
    time_us: int = 0
    repo_count: int = 0
    # Virtual wall-clock the crawl takes at the negotiated scan rate (the
    # paper's snapshot ran for 10 days; see netsim.ratelimit).
    crawl_duration_us: int = 0
    verified_signatures: int = 0
    signature_failures: int = 0
    # Repos the crawl could not obtain, and why — the paper likewise
    # reports fewer repositories (5.52M) than identifiers (5.59M).
    failed_dids: set = field(default_factory=set)
    failure_reasons: dict[str, str] = field(default_factory=dict)
    # Resilience accounting: per-request retries, skip-queue rounds, and
    # transient failures that later recovered.
    requests_attempted: int = 0
    transient_retries: int = 0
    requeued_dids: int = 0
    retry_rounds: int = 0
    posts: list[PostRow] = field(default_factory=list)
    likes: list[SubjectRow] = field(default_factory=list)
    follows: list[SubjectRow] = field(default_factory=list)
    reposts: list[SubjectRow] = field(default_factory=list)
    blocks: list[SubjectRow] = field(default_factory=list)
    feed_generators: list[FeedGenRow] = field(default_factory=list)
    labeler_services: list[tuple[str, Optional[int]]] = field(default_factory=list)
    profiles: dict[str, str] = field(default_factory=dict)  # did -> displayName
    other_collections: Counter = field(default_factory=Counter)
    records_per_repo: Counter = field(default_factory=Counter)

    @property
    def labeler_service_dids(self) -> list[str]:
        return [did for did, _ in self.labeler_services]

    def operation_totals(self) -> dict[str, int]:
        """The Section 4 headline totals."""
        return {
            "likes": len(self.likes),
            "posts": len(self.posts),
            "follows": len(self.follows),
            "reposts": len(self.reposts),
            "blocks": len(self.blocks),
        }


class RepositoriesCollector:
    """Downloads and parses every repository.

    ``rate_per_second`` models the scan rate agreed with the operator
    (paper ethics section); the resulting virtual crawl duration is
    recorded on the dataset.
    """

    #: Skip-queue passes after the initial crawl; the wait before each
    #: doubles so a pass lands past any outage shorter than ~2.5 hours.
    MAX_RETRY_ROUNDS = 4
    FIRST_ROUND_WAIT_US = 10 * 60 * 1_000_000  # 10 virtual minutes

    def __init__(
        self,
        services: ServiceDirectory,
        relay_url: str,
        rate_per_second: float = 6.4,
        resolver=None,
        retry_policy=None,
        integrity=None,
        host_of=None,
        on_progress=None,
        telemetry=None,
    ):
        from repro.netsim.faults import DEFAULT_RETRY_POLICY

        self.services = services
        self.relay_url = relay_url
        self.rate_per_second = rate_per_second
        # Optional DID resolver: when present, every downloaded repo's
        # commit signature is verified against the account's published
        # signing key (end-to-end authenticated transfer).
        self.resolver = resolver
        self.retry_policy = retry_policy if retry_policy is not None else DEFAULT_RETRY_POLICY
        # Optional IntegrityMonitor: runs the full self-certification
        # stack (digests, MST invariants, signature) on every download and
        # quarantines failures instead of ingesting them.  ``host_of``
        # maps a DID to its hosting PDS so quarantines are attributed to
        # the origin host even though the bytes came through the relay.
        self.integrity = integrity
        self.host_of = host_of
        self.on_progress = on_progress
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.dataset = RepositoriesDataset()

    def crawl(self, dids: Iterable[str], now_us: int) -> RepositoriesDataset:
        with self.telemetry.tracer.span("repo-crawl", cat="collector"):
            return self._crawl(dids, now_us)

    def _crawl(self, dids: Iterable[str], now_us: int) -> RepositoriesDataset:
        """Download every repo, skipping-and-retrying transient failures.

        Each request retries transient errors in place (shared backoff
        policy); a DID whose retries exhaust is parked on a skip queue and
        re-attempted in later passes with growing waits, so an outage that
        ends mid-crawl costs nothing but time.  DIDs that never succeed
        are recorded with their final failure reason, the way the paper
        reports the repos its snapshot could not fetch.
        """
        from repro.netsim.faults import TRANSIENT_STATUSES, call_with_retries
        from repro.netsim.ratelimit import TokenBucket

        bucket = TokenBucket(self.rate_per_second, burst=10)
        virtual_now = now_us
        data = self.dataset
        data.time_us = now_us
        rng = random.Random(0x5EED ^ 0xCA11)
        counters = Counter()

        # Resume support: a DID the dataset already accounts for (crawled
        # or terminally failed/quarantined) is never fetched again.
        pending = [
            did
            for did in dids
            if did not in data.records_per_repo and did not in data.failed_dids
        ]
        rounds = 0
        while pending:
            still_failing: list[str] = []
            for did in pending:
                virtual_now = bucket.acquire(virtual_now)
                try:
                    car, virtual_now = call_with_retries(
                        self.services,
                        self.relay_url,
                        "com.atproto.sync.getRepo",
                        now_us=virtual_now,
                        policy=self.retry_policy,
                        rng=rng,
                        counters=counters,
                        did=did,
                    )
                except XrpcError as exc:
                    if exc.status in TRANSIENT_STATUSES:
                        still_failing.append(did)
                    else:
                        data.failed_dids.add(did)
                        data.failure_reasons[did] = "xrpc %d: %s" % (exc.status, exc)
                    continue
                data.failed_dids.discard(did)  # recovered on a later round
                data.failure_reasons.pop(did, None)
                self._ingest_repo(did, car)
                if self.on_progress is not None:
                    self.on_progress("repo:%s" % did)
            if not still_failing:
                break
            if rounds >= self.MAX_RETRY_ROUNDS:
                for did in still_failing:
                    data.failed_dids.add(did)
                    data.failure_reasons[did] = (
                        "transient failures exhausted %d retry rounds" % rounds
                    )
                break
            # Park the failures and come back after a growing wait.
            data.requeued_dids += len(still_failing)
            rounds += 1
            virtual_now += self.FIRST_ROUND_WAIT_US * (2 ** (rounds - 1))
            pending = still_failing
        data.retry_rounds = max(data.retry_rounds, rounds)
        data.requests_attempted += counters["attempts"]
        data.transient_retries += counters["retries"]
        data.crawl_duration_us = virtual_now - now_us
        return data

    def _ingest_repo(self, did: str, car: bytes) -> None:
        data = self.dataset
        verify_key = self._signing_key_for(did)
        if self.integrity is not None:
            host = self.host_of(did) if self.host_of is not None else self.relay_url
            snapshot = self.integrity.verify_repo_car(host, did, car, verify_key=verify_key)
            if snapshot is None:
                # Quarantined: the repo never enters the dataset, and the
                # DID is terminally failed (re-fetching would serve the
                # same poisoned bytes — corruption draws are stateless).
                kind = self.integrity.report.quarantined[-1].kind
                data.failed_dids.add(did)
                data.failure_reasons[did] = "quarantined: %s" % kind
                return
            if verify_key is not None:
                data.verified_signatures += 1
        else:
            try:
                snapshot = import_car(car, verify_key=verify_key)
            except ValueError:
                data.signature_failures += 1
                snapshot = import_car(car)
            else:
                if verify_key is not None:
                    data.verified_signatures += 1
        data.repo_count += 1
        count = 0
        for path, record in snapshot.records.items():
            count += 1
            self._ingest(did, path, record)
        data.records_per_repo[did] = count

    def _signing_key_for(self, did: str):
        if self.resolver is None:
            return None
        doc = self.resolver.resolve(did)
        if doc is None or doc.signing_key is None:
            return None
        from repro.atproto.keys import public_key_from_did_key

        try:
            return public_key_from_did_key(doc.signing_key)
        except ValueError:
            return None

    def _ingest(self, did: str, path: str, record: dict) -> None:
        collection, _, rkey = path.partition("/")
        created = record.get("createdAt", "")
        created_us = parse_created_at_us(created)
        data = self.dataset
        if collection == POST:
            year = int(created[:4]) if created[:4].isdigit() else 0
            langs = record.get("langs") or []
            data.posts.append(
                PostRow(
                    did=did,
                    rkey=rkey,
                    created_us=created_us,
                    created_year=year,
                    lang=langs[0] if langs else None,
                    has_media="images" in (record.get("embed") or {}),
                )
            )
        elif collection == LIKE:
            subject = (record.get("subject") or {}).get("uri", "")
            data.likes.append(SubjectRow(did, created_us, subject))
        elif collection == FOLLOW:
            data.follows.append(SubjectRow(did, created_us, record.get("subject", "")))
        elif collection == REPOST:
            subject = (record.get("subject") or {}).get("uri", "")
            data.reposts.append(SubjectRow(did, created_us, subject))
        elif collection == BLOCK:
            data.blocks.append(SubjectRow(did, created_us, record.get("subject", "")))
        elif collection == FEED_GENERATOR:
            data.feed_generators.append(
                FeedGenRow(
                    did=did,
                    rkey=rkey,
                    created_us=created_us,
                    service_did=record.get("did", ""),
                    display_name=record.get("displayName", ""),
                    description=record.get("description", ""),
                )
            )
        elif collection == LABELER_SERVICE:
            data.labeler_services.append((did, created_us))
        elif collection == PROFILE:
            data.profiles[did] = record.get("displayName", "")
        else:
            data.other_collections[collection] += 1

"""User Identifier Dataset (Section 3).

Weekly ``com.atproto.sync.listRepos`` crawls of the Relay yield the set of
all active users, their DIDs, and the latest repo commit revision — used
both as the seed list for every other crawl and to detect which repos
changed between snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netsim.faults import DEFAULT_RETRY_POLICY, call_with_retries, retry_jitter_rng
from repro.obs.telemetry import NULL_TELEMETRY
from repro.services.xrpc import ServiceDirectory
from repro.simulation.clock import US_PER_DAY


@dataclass
class IdentifierSnapshot:
    """One listRepos crawl: DID → (head CID, rev)."""

    time_us: int
    repos: dict[str, tuple[str, str]] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.repos)


@dataclass
class UserIdentifierDataset:
    snapshots: list[IdentifierSnapshot] = field(default_factory=list)
    # Pages that needed a transient-error retry (resumed from the same
    # cursor, so a flaky relay costs time but never truncates a crawl).
    page_retries: int = 0
    aborted_crawls: int = 0  # crawls abandoned after retries exhausted

    def all_dids(self) -> set[str]:
        """Every identifier seen in any snapshot (the paper's 5.59M)."""
        seen: set[str] = set()
        for snapshot in self.snapshots:
            seen.update(snapshot.repos)
        return seen

    def latest(self) -> IdentifierSnapshot:
        if not self.snapshots:
            raise ValueError("no snapshots collected")
        return self.snapshots[-1]

    def changed_between(self, earlier: int, later: int) -> set[str]:
        """DIDs whose rev advanced between two snapshot indexes."""
        before = self.snapshots[earlier].repos
        after = self.snapshots[later].repos
        changed = set()
        for did, (_, rev) in after.items():
            old = before.get(did)
            if old is None or old[1] != rev:
                changed.add(did)
        return changed


class ListReposCollector:
    """Paginates ``sync.listRepos`` against the Relay."""

    def __init__(
        self,
        services: ServiceDirectory,
        relay_url: str,
        page_size: int = 1000,
        retry_policy=None,
        integrity=None,
        on_progress=None,
        telemetry=None,
    ):
        self.services = services
        self.relay_url = relay_url
        self.page_size = page_size
        self.retry_policy = retry_policy if retry_policy is not None else DEFAULT_RETRY_POLICY
        self.integrity = integrity
        self.on_progress = on_progress
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.dataset = UserIdentifierDataset()

    def crawl(self, now_us: int) -> IdentifierSnapshot:
        with self.telemetry.tracer.span("identifiers-crawl", cat="collector"):
            return self._crawl(now_us)

    def _crawl(self, now_us: int) -> IdentifierSnapshot:
        """One full pagination; transient page failures resume from the
        same cursor.  A crawl whose retries exhaust is abandoned (and
        counted) rather than recorded as a silently truncated snapshot —
        the weekly cadence supplies the next attempt."""
        from collections import Counter

        from repro.services.xrpc import XrpcError

        for existing in self.dataset.snapshots:
            if existing.time_us == now_us:
                # Resume: this crawl completed before the checkpoint.
                return existing
        snapshot = IdentifierSnapshot(time_us=now_us)
        counters: Counter = Counter()
        cursor = None
        virtual_now = now_us
        retry_rng = retry_jitter_rng("identifiers", now_us)
        try:
            while True:
                page, virtual_now = call_with_retries(
                    self.services,
                    self.relay_url,
                    "com.atproto.sync.listRepos",
                    now_us=virtual_now,
                    policy=self.retry_policy,
                    rng=retry_rng,
                    counters=counters,
                    cursor=cursor,
                    limit=self.page_size,
                )
                for entry in page["repos"]:
                    did = entry["did"]
                    if self.integrity is not None and not self.integrity.check_identifier(
                        self.relay_url, did, entry["head"], entry["rev"]
                    ):
                        continue  # quarantined: unusable as a crawl seed
                    snapshot.repos[did] = (entry["head"], entry["rev"])
                if self.on_progress is not None:
                    self.on_progress("listRepos:%s" % (cursor or "start"))
                cursor = page["cursor"]
                if cursor is None:
                    break
        except XrpcError:
            self.dataset.page_retries += counters["retries"]
            self.dataset.aborted_crawls += 1
            return snapshot
        self.dataset.page_retries += counters["retries"]
        self.dataset.snapshots.append(snapshot)
        return snapshot

    def schedule_weekly(self, world, start_us: int, end_us: int) -> None:
        """Register weekly crawls on the world's timeline (the paper
        queried the endpoint weekly during March and April 2024)."""
        t = start_us
        while t < end_us:
            world.schedule(t, lambda now_us: self.crawl(now_us))
            t += 7 * US_PER_DAY

"""Feed Generators and Feed Post datasets (Sections 3 and 7).

Compiles the list of all feed generators from repository records plus live
firehose updates, fetches metadata through the AppView's
``getFeedGenerator`` (likes, creator, online/valid flags), and crawls each
feed's posts bi-weekly through ``getFeed`` with an *empty* crawler account
— which is why personalized feeds contribute zero posts (Figure 10).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.netsim.faults import DEFAULT_RETRY_POLICY, call_with_retries, retry_jitter_rng
from repro.obs.telemetry import NULL_TELEMETRY
from repro.services.xrpc import ServiceDirectory, XrpcError


@dataclass
class FeedGeneratorMeta:
    uri: str
    creator: str
    service_did: str
    display_name: str
    description: str
    like_count: int
    is_online: bool
    is_valid: bool


@dataclass
class FeedPostObservation:
    """One post observed in one feed crawl."""

    post_uri: str
    author: str
    created_at: str
    like_count: int


@dataclass
class FeedGeneratorDataset:
    discovered: set = field(default_factory=set)  # uris from records
    metadata: dict[str, FeedGeneratorMeta] = field(default_factory=dict)
    no_metadata: set = field(default_factory=set)
    # feed uri -> {post uri -> FeedPostObservation} accumulated over crawls
    feed_posts: dict[str, dict[str, FeedPostObservation]] = field(default_factory=dict)
    crawl_times: list[int] = field(default_factory=list)
    getfeed_failures: set = field(default_factory=set)
    # AppView calls that needed a transient-error retry before answering.
    transient_retries: int = 0

    def discovered_count(self) -> int:
        return len(self.discovered)

    def reachable(self) -> list[FeedGeneratorMeta]:
        """Feeds with metadata marking them online (the paper's 40,398)."""
        return [m for m in self.metadata.values() if m.is_online]

    def posts_for(self, uri: str) -> dict[str, FeedPostObservation]:
        return self.feed_posts.get(uri, {})

    def total_observed_posts(self) -> int:
        return sum(len(posts) for posts in self.feed_posts.values())


class FeedGeneratorCollector:
    """Metadata + bi-weekly getFeed crawler."""

    def __init__(
        self,
        services: ServiceDirectory,
        appview_url: str,
        page_limit: int = 100,
        retry_policy=None,
        integrity=None,
        on_progress=None,
        telemetry=None,
    ):
        self.services = services
        self.appview_url = appview_url
        self.page_limit = page_limit
        self.retry_policy = retry_policy if retry_policy is not None else DEFAULT_RETRY_POLICY
        self.integrity = integrity
        self.on_progress = on_progress
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.dataset = FeedGeneratorDataset()
        self._retry_counters: Counter = Counter()

    def _call(self, method: str, at_us: int, **params):
        """One retrying AppView call; tracks the dataset's retry count.

        ``at_us`` is the virtual time of the call (kept separate from any
        ``now_us`` *XRPC parameter* the method itself takes).
        """
        before = self._retry_counters["retries"]
        try:
            result, _ = call_with_retries(
                self.services,
                self.appview_url,
                method,
                now_us=at_us,
                policy=self.retry_policy,
                rng=retry_jitter_rng("feedgens:%s" % method, at_us),
                counters=self._retry_counters,
                params=params,
            )
        finally:
            self.dataset.transient_retries += self._retry_counters["retries"] - before
        return result

    def discover(self, uris) -> None:
        self.dataset.discovered.update(uris)

    def fetch_metadata(self, now_us: int) -> None:
        """getFeedGenerator for every discovered feed not yet fetched."""
        with self.telemetry.tracer.span("feedgen-metadata", cat="collector"):
            self._fetch_metadata(now_us)

    def _fetch_metadata(self, now_us: int) -> None:
        for uri in sorted(self.dataset.discovered):
            if uri in self.dataset.metadata or uri in self.dataset.no_metadata:
                continue
            try:
                result = self._call("app.bsky.feed.getFeedGenerator", now_us, feed=uri)
            except XrpcError:
                self.dataset.no_metadata.add(uri)
                continue
            view = result["view"]
            meta = FeedGeneratorMeta(
                uri=uri,
                creator=view["creator"],
                service_did=view["did"],
                display_name=view["displayName"],
                description=view["description"],
                like_count=view["likeCount"],
                is_online=result["isOnline"],
                is_valid=result["isValid"],
            )
            if not meta.is_online:
                # Endpoint never answered: grouped with the paper's
                # "Feed Generators without metadata" exclusions.
                self.dataset.no_metadata.add(uri)
            self.dataset.metadata[uri] = meta

    def crawl_feed_posts(self, now_us: int, max_pages: int = 200) -> int:
        """One getFeed sweep over all online feeds (anonymous viewer)."""
        self.fetch_metadata(now_us)  # pick up feeds discovered since last sweep
        if now_us in self.dataset.crawl_times:
            # Resume: this sweep completed before the checkpoint (the
            # per-feed buckets already dedupe by post URI, but the sweep
            # timestamp must not be double-recorded).
            return 0
        observed = 0
        for meta in self.dataset.reachable():
            cursor: Optional[str] = None
            pages = 0
            bucket = self.dataset.feed_posts.setdefault(meta.uri, {})
            while pages < max_pages:
                try:
                    page = self._call(
                        "app.bsky.feed.getFeed",
                        now_us,
                        feed=meta.uri,
                        limit=self.page_limit,
                        cursor=cursor,
                        viewer=None,  # the paper's "empty" crawl accounts
                        now_us=now_us,
                    )
                except XrpcError:
                    self.dataset.getfeed_failures.add(meta.uri)
                    break
                for item in page["feed"]:
                    post = item["post"]
                    if self.integrity is not None and not self.integrity.check_record_uri(
                        meta.service_did or self.appview_url, post["uri"]
                    ):
                        continue  # quarantined: not a well-formed at:// URI
                    if post["uri"] not in bucket:
                        observed += 1
                        bucket[post["uri"]] = FeedPostObservation(
                            post_uri=post["uri"],
                            author=post["author"],
                            created_at=post["record"]["createdAt"],
                            like_count=post["likeCount"],
                        )
                cursor = page.get("cursor")
                pages += 1
                if cursor is None:
                    break
            if self.on_progress is not None:
                self.on_progress("feed:%s:%d" % (meta.uri, now_us))
        # Recorded only once the sweep completes: a checkpoint taken
        # mid-sweep must make the resumed run redo the whole sweep (the
        # buckets dedupe), not skip its unfinished remainder.
        self.dataset.crawl_times.append(now_us)
        return observed

    def schedule_biweekly_crawls(self, world, start_us: int, end_us: int) -> None:
        """The paper collected feed post URIs bi-weekly."""
        from repro.simulation.clock import US_PER_DAY

        t = start_us
        while t < end_us:
            world.schedule(t, lambda now_us: self.crawl_feed_posts(now_us))
            t += 14 * US_PER_DAY

"""Text rendering of every table and figure.

Benchmarks and examples print through these helpers so the output shape
mirrors the paper's tables (same columns) and figures (series of points).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.pipeline import StudyDatasets
from repro.core.analysis import (  # noqa: F401 (re-exported for callers)
    activity,
    feeds,
    graph,
    identity,
    moderation,
    summary,
)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width table rendering."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Compact text rendering of a series (for figure outputs)."""
    if not values:
        return "(empty)"
    blocks = " ▁▂▃▄▅▆▇█"
    peak = max(values) or 1.0
    if len(values) > width:
        stride = len(values) / width
        values = [values[int(i * stride)] for i in range(width)]
    return "".join(blocks[min(8, int(8 * value / peak))] for value in values)


# ---------------------------------------------------------------------------
# Per-artefact renderers
# ---------------------------------------------------------------------------


def render_table1(datasets: StudyDatasets) -> str:
    rows = summary.table1_firehose_event_types(datasets)
    body = format_table(
        ("Event Type", "# Total", "Share (%)"),
        [(r.event_type, r.total, "%.2f" % r.share_pct) for r in rows],
    )
    return "Table 1: Overview of Firehose event types\n" + body


def render_fig1(datasets: StudyDatasets) -> str:
    fig = activity.daily_activity(datasets)
    actives = [fig.active_users.get(day, 0) for day in fig.days]
    posts = [fig.ops_by_type["posts"].get(day, 0) for day in fig.days]
    likes = [fig.ops_by_type["likes"].get(day, 0) for day in fig.days]
    lines = [
        "Figure 1: Daily operation and active user counts",
        "days: %s .. %s (%d)" % (fig.days[0], fig.days[-1], len(fig.days)) if fig.days else "(no data)",
        "active  %s  (peak %d)" % (sparkline(actives), max(actives) if actives else 0),
        "posts   %s  (peak %d)" % (sparkline(posts), max(posts) if posts else 0),
        "likes   %s  (peak %d)" % (sparkline(likes), max(likes) if likes else 0),
    ]
    return "\n".join(lines)


def render_fig2(datasets: StudyDatasets) -> str:
    fig = activity.language_communities(datasets)
    lines = ["Figure 2: Active user counts per language community"]
    for lang, total in fig.users_per_language.most_common():
        series = fig.daily_active_by_lang.get(lang, {})
        days = sorted(series)
        values = [series[d] for d in days]
        lines.append(
            "%-3s users=%-6d %s" % (lang, total, sparkline(values))
        )
    return "\n".join(lines)


def render_fig3(datasets: StudyDatasets) -> str:
    fig = identity.subdomain_distribution(datasets)
    body = format_table(
        ("Registered domain", "# handles"),
        fig.top(12),
    )
    return (
        "Figure 3: Subdomain handles per registered domain (bsky.social excluded)\n"
        + body
    )


def render_table2(datasets: StudyDatasets) -> str:
    rows = identity.table2_registrars(datasets)
    body = format_table(
        ("IANA ID", "Registrar Name", "# Total", "Share (%)"),
        [(r.iana_id, r.registrar_name, r.total, "%.2f%%" % r.share_pct) for r in rows],
    )
    return "Table 2: Domain name handles per registrar\n" + body


def render_fig4(datasets: StudyDatasets) -> str:
    official = moderation.find_official_labeler_did(datasets) or ""
    fig = moderation.label_growth(datasets, official)
    rows = []
    for month in fig.months:
        rows.append(
            (
                month,
                fig.official_by_month.get(month, 0),
                fig.community_by_month.get(month, 0),
                fig.labeler_count_by_month.get(month, 0),
            )
        )
    body = format_table(("Month", "Official labels", "Community labels", "# community labelers"), rows)
    return "Figure 4: Labels produced by source per month\n" + body


def render_table3(datasets: StudyDatasets) -> str:
    official = moderation.find_official_labeler_did(datasets) or ""
    rows = moderation.table3_top_community_labelers(datasets, official)
    body = format_table(
        ("Rank", "# Applied", "Labeler DID", "Likes"),
        [(r.rank, r.applied, r.did, r.likes) for r in rows],
    )
    return "Table 3: Top community labelers by labels applied\n" + body


def render_table4(datasets: StudyDatasets) -> str:
    rows = moderation.table4_label_targets(datasets)
    body = format_table(
        ("Object Type", "# Objects", "Share (%)", "Top Labels"),
        [
            (
                r.object_type,
                r.objects,
                "%.2f" % r.share_pct,
                ", ".join("%s (%d)" % pair for pair in r.top_labels),
            )
            for r in rows
        ],
    )
    return "Table 4: Label targets with most-applied labels\n" + body


def render_fig5(datasets: StudyDatasets) -> str:
    rows = moderation.labeler_reaction_times(datasets)
    body = format_table(
        ("Labeler", "# Labels", "Median RT [s]", "IQD [s]"),
        [
            (r.did[:24], r.total, "%.2f" % r.reaction.median_s, "%.2f" % r.reaction.iqd_s)
            for r in rows
        ],
    )
    return "Figure 5: Labels produced by source vs reaction time\n" + body


def render_fig6(datasets: StudyDatasets) -> str:
    rows = moderation.value_reaction_times(datasets)[:25]
    body = format_table(
        ("Labeler", "Value", "# Labels", "Median RT [s]"),
        [(r.src[:20], r.value, r.count, "%.2f" % r.reaction.median_s) for r in rows],
    )
    return "Figure 6: Labels per value vs reaction time\n" + body


def render_table6(datasets: StudyDatasets) -> str:
    rows = moderation.labeler_reaction_times(datasets)
    body = format_table(
        ("Rank", "DID", "Top Values", "# Unique", "# Total", "Share (%)", "Median [s]", "IQD [s]"),
        [
            (
                r.rank,
                r.did[:28],
                ", ".join(r.top_values),
                r.unique_values,
                r.total,
                "%.2f" % r.share_pct,
                "%.2f" % r.reaction.median_s,
                "%.2f" % r.reaction.iqd_s,
            )
            for r in rows
        ],
    )
    return "Table 6: Reaction time of labelers to posts\n" + body


def render_fig7(datasets: StudyDatasets) -> str:
    fig = feeds.feed_growth(datasets)
    if not fig.days:
        return "Figure 7: (no feed generator data)"
    final_day = fig.days[-1]
    series_feeds = [fig.cumulative_feeds.get(d, 0) for d in fig.days]
    series_likes = [fig.cumulative_feed_likes.get(d, 0) for d in fig.days]
    series_follow = [fig.cumulative_creator_followers.get(d, 0) for d in fig.days]
    return "\n".join(
        [
            "Figure 7: Cumulative feed generators / likes / creator followers",
            "feeds     %s  (final %d)" % (sparkline(series_feeds), fig.cumulative_feeds[final_day]),
            "likes     %s  (final %d)" % (sparkline(series_likes), fig.cumulative_feed_likes[final_day]),
            "followers %s  (final %d)"
            % (sparkline(series_follow), fig.cumulative_creator_followers[final_day]),
        ]
    )


def render_fig8(datasets: StudyDatasets) -> str:
    words = feeds.description_word_frequencies(datasets, top_n=20)
    body = format_table(("Word", "Count"), words)
    return "Figure 8: Most common words in feed descriptions\n" + body


def render_fig9(datasets: StudyDatasets) -> str:
    stats = feeds.feed_label_analysis(datasets)
    lines = [
        "Figure 9: Top labels of heavily-labeled feeds",
        "feeds examined: %d, with labels: %d (%.1f%%), heavily labeled: %d (%.2f%%)"
        % (
            stats.feeds_examined,
            stats.feeds_with_any_label,
            100 * stats.labeled_share,
            stats.heavily_labeled,
            100 * stats.heavily_labeled_share,
        ),
    ]
    for value, count in stats.dominant_label_counts.most_common(10):
        lines.append("  %-20s %d feeds" % (value, count))
    return "\n".join(lines)


def render_fig10(datasets: StudyDatasets) -> str:
    summary_stats = feeds.posts_vs_likes_summary(datasets)
    points = feeds.posts_vs_likes(datasets)
    top_liked = sorted(points, key=lambda p: -p.likes)[:5]
    top_posted = sorted(points, key=lambda p: -p.posts)[:5]
    lines = [
        "Figure 10: Feed posts vs likes",
        "feeds: %d, never posted: %d, high-like zero-post (personalized): %d"
        % (summary_stats.total_feeds, summary_stats.never_posted, summary_stats.high_like_no_post),
        "posts-likes correlation: %.3f" % summary_stats.correlation,
        "top liked: " + ", ".join("(%d posts, %d likes)" % (p.posts, p.likes) for p in top_liked),
        "top posted: " + ", ".join("(%d posts, %d likes)" % (p.posts, p.likes) for p in top_posted),
    ]
    return "\n".join(lines)


def render_fig11(datasets: StudyDatasets) -> str:
    analysis = graph.degree_distributions(datasets)
    return "\n".join(
        [
            "Figure 11: Follow degree distributions (feed creators highlighted)",
            "accounts: %d, creators: %d" % (analysis.accounts, analysis.creators),
            "mean in-degree: all=%.1f creators=%.1f"
            % (analysis.in_degree.mean_degree(), analysis.in_degree.mean_degree(True)),
            "mean out-degree: all=%.1f creators=%.1f"
            % (analysis.out_degree.mean_degree(), analysis.out_degree.mean_degree(True)),
            "creators skew popular: %s" % analysis.creators_skew_popular(),
        ]
    )


def render_fig12(datasets: StudyDatasets) -> str:
    rows = feeds.provider_shares(datasets)[:8]
    body = format_table(
        ("Provider (service DID)", "Feeds", "Feed %", "Posts %", "Likes %"),
        [
            (
                r.provider[:36],
                r.feeds,
                "%.1f%%" % (100 * r.feed_share),
                "%.1f%%" % (100 * r.post_share),
                "%.1f%%" % (100 * r.like_share),
            )
            for r in rows
        ],
    )
    top3 = feeds.top_provider_concentration(datasets)
    return "Figure 12: Feed hosting providers (top-3 share %.1f%%)\n%s" % (100 * top3, body)


def render_table5() -> str:
    matrix = feeds.table5_feature_matrix()
    platforms = ["Skyfeed", "Bluefeed", "Blueskyfeeds", "Goodfeeds", "Blueskyfeedcreator"]
    rows = []
    for feature in sorted(matrix):
        rows.append(
            [feature] + ["x" if matrix[feature].get(p) else "" for p in platforms]
        )
    body = format_table(["Feature"] + platforms, rows)
    return "Table 5: Feed-service feature matrix\n" + body


def render_collection_health(datasets: StudyDatasets) -> str:
    """Resilience accounting: what went wrong and what the crawlers did.

    Covers injected faults (when a fault plan was active), firehose
    disconnects / cursor-resumes / retention gaps, and per-collector retry
    totals — the run's answer to Section 2's collection-challenges
    discussion.  Renders sensibly for a fault-free run too.
    """
    fh = datasets.firehose
    repos = datasets.repositories
    lines = ["Collection health: injected faults, retries, and gaps"]
    if datasets.faults is None:
        lines.append("fault injection: off (fault-free run)")
    else:
        stats = datasets.faults
        lines.append(
            "fault injection: %d faults injected across %d dispatched calls, "
            "%.1fs latency added"
            % (
                stats.total_injected(),
                stats.calls_seen,
                stats.injected_latency_us / 1e6,
            )
        )
        if stats.injected_by_kind:
            lines.append(
                "  by kind:   "
                + ", ".join(
                    "%s=%d" % (kind, count)
                    for kind, count in sorted(stats.injected_by_kind.items())
                )
            )
        if stats.injected_by_status:
            lines.append(
                "  by status: "
                + ", ".join(
                    "%d=%d" % (status, count)
                    for status, count in sorted(stats.injected_by_status.items())
                )
            )
    lines.append(
        "firehose: %d disconnects, %d reconnects, %d events recovered by "
        "cursor-resume" % (fh.disconnects, fh.reconnects, fh.replayed_events)
    )
    if fh.gaps:
        lines.append(
            "firehose retention gaps: %d (%d events lost for good)"
            % (len(fh.gaps), fh.dropped_events)
        )
        for gap in fh.gaps[:5]:
            lines.append(
                "  cursor %d -> oldest available %s: %d dropped"
                % (gap.resume_cursor, gap.oldest_available_seq, gap.dropped)
            )
    else:
        lines.append("firehose retention gaps: none")
    lines.append(
        "repo crawl: %d requests (%d retries), %d DIDs requeued over %d "
        "skip-queue rounds, %d permanent failures"
        % (
            repos.requests_attempted,
            repos.transient_retries,
            repos.requeued_dids,
            repos.retry_rounds,
            len(repos.failed_dids),
        )
    )
    for did, reason in sorted(repos.failure_reasons.items())[:5]:
        lines.append("  %s: %s" % (did, reason))
    lines.append(
        "identifier crawls: %d page retries, %d aborted crawls"
        % (datasets.identifiers.page_retries, datasets.identifiers.aborted_crawls)
    )
    lines.append(
        "other retries: diddocs=%d labelers=%d feedgens=%d active-probes=%d"
        % (
            datasets.did_documents.transient_retries,
            datasets.labels.transient_retries,
            datasets.feed_generators.transient_retries,
            datasets.active.transient_retries,
        )
    )
    telemetry = datasets.telemetry
    if telemetry is not None and telemetry.enabled:
        from repro.obs import profile

        failures = [
            (outcome, count)
            for outcome, count in profile.outcome_rows(telemetry.registry)
            if outcome != profile.OUTCOME_OK
        ]
        if failures:
            lines.append(
                "failed calls by cause: "
                + ", ".join("%s=%d" % pair for pair in failures)
            )
    return "\n".join(lines)


def render_telemetry(datasets: StudyDatasets) -> str:
    """The telemetry section: phases, hot hosts/NSIDs, call outcomes.

    Reads the study's metrics registry back (see ``repro.obs``): per-phase
    virtual/wall durations, the top hosts by call volume with injected-
    latency percentiles, the hottest method NSIDs, and the outcome
    breakdown that attributes connection errors (unknown host vs down
    host vs injected faults).
    """
    from repro.obs import profile

    lines = ["Telemetry: phases, hot hosts, and call outcomes"]
    telemetry = datasets.telemetry
    if telemetry is None or not telemetry.enabled:
        lines.append("telemetry: disabled (--no-telemetry run)")
        return "\n".join(lines)

    phase_rows = telemetry.phase_rows()
    if phase_rows:
        lines.append("")
        lines.append(
            format_table(
                ("phase", "runs", "virtual", "wall"),
                [
                    (name, runs, _fmt_us(virtual_us), _fmt_us(wall_us))
                    for name, runs, virtual_us, wall_us in phase_rows
                ],
            )
        )

    registry = telemetry.registry
    hosts = profile.host_rows(registry, top_n=10)
    if hosts:
        lines.append("")
        lines.append("top hosts by XRPC calls (latency = injected, virtual):")
        lines.append(
            format_table(
                ("host", "calls", "errors", "p50", "p90", "p99"),
                [
                    (host, calls, errors, _fmt_us(p50), _fmt_us(p90), _fmt_us(p99))
                    for host, calls, errors, p50, p90, p99 in hosts
                ],
            )
        )
    nsids = profile.nsid_rows(registry, top_n=10)
    if nsids:
        lines.append("")
        lines.append("top method NSIDs:")
        lines.append(format_table(("nsid", "calls", "errors"), nsids))
    outcomes = profile.outcome_rows(registry)
    if outcomes:
        lines.append("")
        lines.append(
            "call outcomes: "
            + ", ".join("%s=%d" % (outcome, count) for outcome, count in outcomes)
        )

    lines.append("")
    lines.append(_slo_summary(datasets))

    stats = telemetry.tracer.stats()
    if telemetry.tracer.enabled:
        lines.append(
            "trace: %d events recorded (1-in-%d sampling, %d dropped)"
            % (stats["events"], stats["sample_every"], stats["dropped"])
        )
    else:
        lines.append("trace: off (enable with --trace-out)")
    event_stats = telemetry.events.stats()
    if event_stats["events"]:
        lines.append(
            "events: %d recorded (%d dropped past cap)"
            % (event_stats["events"], event_stats["dropped"])
        )
    return "\n".join(lines)


def _slo_summary(datasets: StudyDatasets) -> str:
    """The objectives table shared by 'telemetry' and 'slo' artefacts."""
    from repro.obs.slo import evaluate_slos, study_window_days

    document = evaluate_slos(
        datasets.telemetry.metrics_snapshot(), window_days=study_window_days()
    )
    rows = [
        (
            obj["name"],
            obj["quantile"],
            _fmt_us(obj["observed_us"]),
            _fmt_us(obj["threshold_us"]),
            "%.4f" % obj["error_rate"],
            "%.4f" % obj["budget_burn_per_day"],
            "ok" if obj["ok"] else "BREACH",
        )
        for obj in document["objectives"]
    ]
    table = format_table(
        ("objective", "q", "observed", "target", "err-rate", "burn/day", "status"),
        rows,
    )
    return "SLOs (bundle %s, %d breach%s over %.0f virtual days):\n%s" % (
        document["bundle"],
        document["breaches"],
        "" if document["breaches"] == 1 else "es",
        document["window_days"],
        table,
    )


def render_slo(datasets: StudyDatasets) -> str:
    """Tail-latency SLO artefact: objectives plus per-NSID/per-host tails.

    Everything derives from the deterministic registry snapshot — the
    same data ``slo.json`` exports — so the numbers here match the
    artefact byte-for-byte semantics (p50/p95/p99/p999 are bucket
    upper-bound estimates from the widened log-spaced buckets).
    """
    lines = ["SLO report: tail latency and error budgets"]
    telemetry = datasets.telemetry
    if telemetry is None or not telemetry.enabled:
        lines.append("telemetry: disabled (--no-telemetry run)")
        return "\n".join(lines)
    from repro.obs.slo import evaluate_slos, study_window_days

    document = evaluate_slos(
        telemetry.metrics_snapshot(), window_days=study_window_days()
    )
    lines.append("")
    lines.append(_slo_summary(datasets))
    for title, key in (
        ("per-NSID latency (virtual, injected):", "by_method"),
        ("per-host latency (virtual, injected):", "by_host"),
    ):
        entries = document["latency"][key]
        if not entries:
            continue
        lines.append("")
        lines.append(title)
        lines.append(
            format_table(
                ("series", "calls", "p50", "p95", "p99", "p999"),
                [
                    (
                        name,
                        row["count"],
                        _fmt_us(row["p50"]),
                        _fmt_us(row["p95"]),
                        _fmt_us(row["p99"]),
                        _fmt_us(row["p999"]),
                    )
                    for name, row in entries.items()
                ],
            )
        )
    return "\n".join(lines)


def _fmt_us(value) -> str:
    """Compact human duration for microsecond quantities."""
    if value is None:
        return "-"
    if value >= 86_400_000_000:
        return "%.1fd" % (value / 86_400_000_000)
    if value >= 3_600_000_000:
        return "%.1fh" % (value / 3_600_000_000)
    if value >= 60_000_000:
        return "%.1fm" % (value / 60_000_000)
    if value >= 1_000_000:
        return "%.1fs" % (value / 1_000_000)
    if value >= 1_000:
        return "%.1fms" % (value / 1_000)
    return "%dus" % value


def render_integrity(datasets: StudyDatasets) -> str:
    """Byzantine-data accounting: verification volume and quarantines.

    Every collector passes its data through the integrity monitor (block
    digests vs CIDs, commit signatures vs DID-document keys, MST
    invariants, frame decoding, PDS membership cross-checks, handle
    round-trips); anything that fails is quarantined and attributed here
    to the host that served it, per corruption kind.
    """
    lines = ["Data integrity: verification and quarantine accounting"]
    report = datasets.integrity
    if report is None:
        lines.append("integrity monitoring: off")
        return "\n".join(lines)
    if report.checked:
        lines.append(
            "verified: "
            + ", ".join(
                "%s=%d" % (kind, report.checked[kind]) for kind in sorted(report.checked)
            )
        )
    else:
        lines.append("verified: nothing collected")
    adversary = datasets.adversary
    if adversary is not None and adversary.total():
        lines.append(
            "adversary: %d items tampered ("
            % adversary.total()
            + ", ".join(
                "%s=%d" % (kind, count) for kind, count in sorted(adversary.by_kind().items())
            )
            + ")"
        )
    if not report.quarantined:
        lines.append("quarantined: nothing — every item passed verification")
        return "\n".join(lines)
    lines.append("quarantined: %d items" % report.total_quarantined())
    lines.append(
        format_table(
            ("host", "kind", "quarantined"),
            [
                (host, kind, count)
                for (host, kind), count in sorted(report.counts.items())
            ],
        )
    )
    for item in sorted(report.quarantined, key=lambda q: (q.host, q.kind, q.item))[:10]:
        lines.append("  %s [%s] %s: %s" % (item.host, item.kind, item.item, item.detail))
    return "\n".join(lines)


def full_report(datasets: StudyDatasets) -> str:
    """Every table and figure, in paper order."""
    sections = [
        render_table1(datasets),
        render_fig1(datasets),
        render_fig2(datasets),
        render_fig3(datasets),
        render_table2(datasets),
        render_fig4(datasets),
        render_table3(datasets),
        render_table4(datasets),
        render_fig5(datasets),
        render_fig6(datasets),
        render_table6(datasets),
        render_fig7(datasets),
        render_fig8(datasets),
        render_fig9(datasets),
        render_fig10(datasets),
        render_fig11(datasets),
        render_fig12(datasets),
        render_table5(),
        render_collection_health(datasets),
        render_integrity(datasets),
        render_telemetry(datasets),
    ]
    return ("\n\n" + "=" * 72 + "\n\n").join(sections)

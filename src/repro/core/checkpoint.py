"""Crash-safe checkpoint/resume for the measurement pipeline.

The study journals its progress — which scheduled actions completed, every
collector's dataset, the firehose cursor, the repo-crawl frontier — into a
single pickled state file, published with write-temp-then-rename so a
crash mid-save leaves the previous complete checkpoint intact.

The contract is *determinism*, not mere continuation: everything the
collectors draw is a stateless function of (config seed, item), and every
collector guards against re-doing work the checkpoint already recorded,
so a run that crashes and resumes any number of times exports artefacts
byte-identical to an uninterrupted run of the same seed.
"""

from __future__ import annotations

import os
import pickle
from contextlib import contextmanager
from typing import Any, Callable, Optional

from repro.core.atomicio import atomic_write_bytes
from repro.netsim.faults import CrashPlan, StudyCrashed
from repro.obs.telemetry import NULL_TELEMETRY

CHECKPOINT_FILENAME = "study.ckpt"
CHECKPOINT_VERSION = 1


class CheckpointError(RuntimeError):
    """An unusable checkpoint (wrong version, different study config)."""


class CheckpointJournal:
    """On-disk store for one study's checkpoint state."""

    def __init__(self, directory: str):
        self.directory = directory
        self.path = os.path.join(directory, CHECKPOINT_FILENAME)

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def save(self, state: dict) -> None:
        payload = dict(state)
        payload["__version__"] = CHECKPOINT_VERSION
        atomic_write_bytes(self.path, pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))

    def load(self) -> Optional[dict]:
        if not self.exists():
            return None
        with open(self.path, "rb") as handle:
            state = pickle.load(handle)
        if not isinstance(state, dict) or state.get("__version__") != CHECKPOINT_VERSION:
            raise CheckpointError("incompatible checkpoint at %s" % self.path)
        return state

    def clear(self) -> None:
        if self.exists():
            os.unlink(self.path)


class StudyCheckpointer:
    """Progress ticks, done-action bookkeeping, and periodic journaling.

    ``tick`` is called on every unit of collection progress (a scheduled
    action, one firehose ingest, one crawled repo, one probe).  The tick
    counter is *process-local* — a resumed run starts again from zero —
    which is what lets a :class:`CrashPlan` compose across a chain of
    crash/resume cycles instead of re-firing at the same spot forever.

    ``save_every`` bounds how much item-level progress a crash can lose
    between full action-boundary saves.

    **Boundary consistency.**  Periodic (tick-driven) saves are deferred
    while a scheduled action or post step executes (see
    :meth:`deferred_saves`): the tick counter still advances — so crash
    plans fire mid-action, like real crashes — but the journal is only
    written between actions, when every dataset *and* the telemetry
    registry form one transactionally consistent snapshot.  That is what
    makes a resumed run's metrics exactly equal an uninterrupted run's:
    a redone action re-counts from the same starting registry it first
    counted from.  Streaming stretches (firehose frames between actions)
    still save periodically — their ingest is cursor-guarded and thus
    idempotent.
    """

    def __init__(
        self,
        journal: Optional[CheckpointJournal] = None,
        crash_plan: Optional[CrashPlan] = None,
        save_every: int = 500,
        telemetry=None,
    ):
        self.journal = journal
        self.crash_plan = crash_plan
        self.save_every = save_every
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.done: set[str] = set()
        self.ticks = 0
        self._since_save = 0
        self._defer_depth = 0
        self._state_fn: Optional[Callable[[], dict]] = None
        registry = self.telemetry.registry
        self._m_saves = registry.counter("checkpoint_saves_total", volatile=True)
        self._m_restores = registry.counter("checkpoint_restores_total", volatile=True)

    def bind(self, state_fn: Callable[[], dict]) -> None:
        """Register the pipeline callback that snapshots full study state."""
        self._state_fn = state_fn

    # -- progress ------------------------------------------------------------

    def tick(self, label: str = "") -> None:
        self.ticks += 1
        if self.crash_plan is not None and self.crash_plan.should_crash(self.ticks):
            # An abrupt kill: no save here — whatever happened since the
            # last journal write is lost, exactly like a real crash.
            raise StudyCrashed(self.ticks, label)
        self._since_save += 1
        if (
            self.journal is not None
            and self._defer_depth == 0
            and self._since_save >= self.save_every
        ):
            self.save()

    @contextmanager
    def deferred_saves(self):
        """Suppress periodic saves for the duration (crashes still fire).

        Wrapped around each scheduled action / post step so the journal
        only ever captures action-boundary state; see the class docstring.
        """
        self._defer_depth += 1
        try:
            yield self
        finally:
            self._defer_depth -= 1

    def is_done(self, action_id: str) -> bool:
        return action_id in self.done

    def mark_done(self, action_id: str) -> None:
        self.done.add(action_id)

    # -- journaling ----------------------------------------------------------

    def save(self) -> None:
        if self.journal is None or self._state_fn is None:
            return
        with self.telemetry.tracer.span("checkpoint-save", cat="checkpoint"):
            state = self._state_fn()
            state["done"] = set(self.done)
            self.journal.save(state)
        self._m_saves.inc()
        # Volatile: *when* saves happen depends on crash timing and the
        # resume chain, so the event must stay out of the deterministic
        # stream (and out of the journal — it describes this process).
        self.telemetry.emit_event(
            "checkpoint.save",
            fields={"ticks": self.ticks, "done": len(self.done)},
            volatile=True,
        )
        self._write_status()
        self._since_save = 0

    def _write_status(self) -> None:
        """Publish the live dashboard feed (``status.json``).

        A small atomically-replaced JSON next to the journal that
        ``python -m repro top`` tails: the full registry snapshot
        (volatile families included — the dashboard is exactly where
        wall-clock and supervision counters belong) plus the newest
        events.  Purely informational: never read back, never
        fingerprinted.
        """
        telemetry = self.telemetry
        if not getattr(telemetry, "enabled", False):
            return
        import json

        from repro.core.atomicio import atomic_write_text

        status = {
            "schema": "repro-status-v1",
            "ticks": self.ticks,
            "done_actions": len(self.done),
            "metrics": telemetry.registry.snapshot(include_volatile=True),
            "events_tail": telemetry.events.events[-30:],
        }
        path = os.path.join(self.journal.directory, "status.json")
        atomic_write_text(path, json.dumps(status, sort_keys=True) + "\n")

    def restore(self) -> Optional[dict]:
        """Load the journal (if any); re-adopts the done-action set."""
        if self.journal is None:
            return None
        with self.telemetry.tracer.span("checkpoint-restore", cat="checkpoint"):
            state = self.journal.load()
        if state is None:
            return None
        self._m_restores.inc()
        done = state.get("done")
        if isinstance(done, set):
            self.done = set(done)
        return state


def state_guard(state: dict, key: str, expected: Any) -> None:
    """Reject a checkpoint written by a differently-configured study."""
    found = state.get(key)
    if found != expected:
        raise CheckpointError(
            "checkpoint %s mismatch: journal has %r, this run has %r" % (key, found, expected)
        )

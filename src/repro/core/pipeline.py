"""The end-to-end measurement pipeline.

Reproduces the paper's collection schedule against a simulated world:

* live Firehose subscription from 2024-03-06,
* weekly ``listRepos`` crawls during March and April 2024,
* a full DID-document snapshot in March 2024,
* a full repository snapshot on April 24,
* bi-weekly feed crawls from April 16 to May 10,
* daily labeler reconnect/backfill, with the label dataset closed on
  May 1,
* active DNS / WHOIS / Tranco measurements after the identity snapshot.

``MeasurementPipeline(world).run()`` returns a :class:`StudyDatasets`
bundle, the input to every analysis in :mod:`repro.core.analysis`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.collect.active import ActiveMeasurementDataset, ActiveMeasurements
from repro.core.collect.diddocs import DidDocumentCollector, DidDocumentDataset
from repro.core.collect.feedgens import FeedGeneratorCollector, FeedGeneratorDataset
from repro.core.collect.firehose import FirehoseCollector, FirehoseDataset
from repro.core.collect.identifiers import ListReposCollector, UserIdentifierDataset
from repro.core.collect.labelers import LabelerCollector, LabelerDataset
from repro.core.collect.repos import RepositoriesCollector, RepositoriesDataset
from repro.identity.handles import HandleResolver
from repro.netsim.faults import FaultInjector, FaultPlan, FaultStats
from repro.netsim.psl import default_psl
from repro.simulation.config import (
    DIDDOC_SNAPSHOT_US,
    FEED_COLLECT_END_US,
    FEED_COLLECT_START_US,
    FIREHOSE_COLLECT_END_US,
    FIREHOSE_COLLECT_START_US,
    LABEL_SNAPSHOT_US,
    REPO_SNAPSHOT_US,
)
from repro.simulation.world import World


@dataclass
class StudyDatasets:
    """Everything the analyses consume."""

    identifiers: UserIdentifierDataset
    did_documents: DidDocumentDataset
    repositories: RepositoriesDataset
    firehose: FirehoseDataset
    feed_generators: FeedGeneratorDataset
    labels: LabelerDataset
    active: ActiveMeasurementDataset
    # What the fault injector actually did during the run (None when the
    # study ran fault-free).
    faults: Optional[FaultStats] = None


class MeasurementPipeline:
    """Wires the collectors to a world and executes the study.

    ``fault_plan`` (optional) turns on deterministic fault injection: the
    plan's injector is installed on the world's service directory so every
    XRPC call passes its gate, the firehose collector gets the plan's
    disconnect windows, and the non-XRPC probes (identity, DNS, WHOIS)
    draw from the same injector.
    """

    def __init__(self, world: World, fault_plan: Optional[FaultPlan] = None):
        self.world = world
        self.fault_plan = fault_plan
        self.fault_injector: Optional[FaultInjector] = None
        services = world.services
        if fault_plan is not None and not fault_plan.is_empty():
            self.fault_injector = FaultInjector(fault_plan)
            services.fault_injector = self.fault_injector
        self.identifier_collector = ListReposCollector(services, world.relay.url)
        self.diddoc_collector = DidDocumentCollector(
            world.resolver, injector=self.fault_injector
        )
        self.repo_collector = RepositoriesCollector(
            services, world.relay.url, resolver=world.resolver
        )
        self.firehose_collector = FirehoseCollector(
            start_us=FIREHOSE_COLLECT_START_US,
            services=services,
            relay_url=world.relay.url,
            fault_plan=fault_plan,
        )
        self.labeler_collector = LabelerCollector(services, world.resolver, world.dns)
        self.feedgen_collector = FeedGeneratorCollector(services, world.appview.url)
        self.active_measurements = ActiveMeasurements(
            HandleResolver(world.dns, world.web),
            world.whois,
            world.tranco,
            default_psl(),
            injector=self.fault_injector,
        )
        self._schedule()

    def _schedule(self) -> None:
        world = self.world
        self.firehose_collector.attach(world)
        self.identifier_collector.schedule_weekly(
            world, FIREHOSE_COLLECT_START_US, FIREHOSE_COLLECT_END_US
        )
        world.schedule(DIDDOC_SNAPSHOT_US, self._snapshot_did_documents)
        world.schedule(REPO_SNAPSHOT_US, self._snapshot_repositories)
        self.labeler_collector.schedule_daily_reconnects(
            world, FIREHOSE_COLLECT_START_US, LABEL_SNAPSHOT_US
        )
        world.schedule(FEED_COLLECT_START_US, self._start_feed_collection)
        t = FEED_COLLECT_START_US + 1
        from repro.simulation.clock import US_PER_DAY

        while t < FEED_COLLECT_END_US:
            world.schedule(t, self._feed_crawl_sweep)
            t += 14 * US_PER_DAY

    # -- scheduled actions ------------------------------------------------------

    def _snapshot_did_documents(self, now_us: int) -> None:
        dids = self.identifier_collector.dataset.all_dids()
        if not dids:
            # The DID snapshot depends on at least one identifier crawl.
            self.identifier_collector.crawl(now_us)
            dids = self.identifier_collector.dataset.all_dids()
        self.diddoc_collector.crawl(sorted(dids), now_us)

    def _snapshot_repositories(self, now_us: int) -> None:
        self.identifier_collector.crawl(now_us)
        dids = self.identifier_collector.dataset.all_dids()
        self.repo_collector.crawl(sorted(dids), now_us)
        # Repos reveal labeler accounts and feed generators for discovery.
        self.labeler_collector.discover(self.repo_collector.dataset.labeler_service_dids)
        self.feedgen_collector.discover(
            row.uri for row in self.repo_collector.dataset.feed_generators
        )

    def _start_feed_collection(self, now_us: int) -> None:
        self.feedgen_collector.discover(self.firehose_collector.dataset.feed_generator_records)
        self.feedgen_collector.fetch_metadata(now_us)

    def _feed_crawl_sweep(self, now_us: int) -> None:
        """Bi-weekly sweep: refresh discovery, then crawl posts."""
        self.feedgen_collector.discover(self.firehose_collector.dataset.feed_generator_records)
        self.feedgen_collector.crawl_feed_posts(now_us)

    # -- execution -----------------------------------------------------------------

    def run(self, progress=None) -> StudyDatasets:
        self.world.run(progress=progress)
        # Close out any firehose disconnect window still open at the end
        # of the collection period: no further live frame will trigger the
        # resume path, so catch up explicitly before reading the dataset.
        self.firehose_collector.backfill(FIREHOSE_COLLECT_END_US)
        # Final labeler discovery/backfill (as of 2024-05-01 in the paper;
        # the firehose may have surfaced labelers the repo snapshot missed).
        self.labeler_collector.discover(self.firehose_collector.dataset.labeler_service_dids)
        self.labeler_collector.connect_and_backfill(LABEL_SNAPSHOT_US)
        # Active identity measurements over the DID-document handles.
        non_bsky = [
            handle
            for handle in self.diddoc_collector.dataset.handles()
            if not handle.endswith(".bsky.social")
        ]
        self.active_measurements.probe_handles(non_bsky, now_us=LABEL_SNAPSHOT_US)
        self.active_measurements.extract_registered_domains(non_bsky)
        self.active_measurements.scan_whois(now_us=LABEL_SNAPSHOT_US)
        self.active_measurements.cross_reference_tranco()
        return self.datasets()

    def datasets(self) -> StudyDatasets:
        return StudyDatasets(
            identifiers=self.identifier_collector.dataset,
            did_documents=self.diddoc_collector.dataset,
            repositories=self.repo_collector.dataset,
            firehose=self.firehose_collector.dataset,
            feed_generators=self.feedgen_collector.dataset,
            labels=self.labeler_collector.dataset,
            active=self.active_measurements.dataset,
            faults=self.fault_injector.stats if self.fault_injector else None,
        )


def run_study(
    config=None, progress=None, fault_plan: Optional[FaultPlan] = None
) -> tuple[World, StudyDatasets]:
    """Convenience: build a world, run the full pipeline, return both."""
    from repro.simulation.config import SimulationConfig

    if config is None:
        config = SimulationConfig.tiny()
    world = World(config)
    pipeline = MeasurementPipeline(world, fault_plan=fault_plan)
    datasets = pipeline.run(progress=progress)
    return world, datasets

"""The end-to-end measurement pipeline.

Reproduces the paper's collection schedule against a simulated world:

* live Firehose subscription from 2024-03-06,
* weekly ``listRepos`` crawls during March and April 2024,
* a full DID-document snapshot in March 2024,
* a full repository snapshot on April 24,
* bi-weekly feed crawls from April 16 to May 10,
* daily labeler reconnect/backfill, with the label dataset closed on
  May 1,
* active DNS / WHOIS / Tranco measurements after the identity snapshot.

``MeasurementPipeline(world).run()`` returns a :class:`StudyDatasets`
bundle, the input to every analysis in :mod:`repro.core.analysis`.

Robustness layers (all optional except integrity, which is always on):

* ``fault_plan`` — transient unreliability (outages, flaky hosts,
  disconnects) behind every network call;
* ``adversarial_plan`` — Byzantine hosts serving corrupted CARs,
  wrong-key commits, garbage frames, lying DID documents, and forged
  handle answers; the always-on :class:`IntegrityMonitor` quarantines
  what fails verification instead of letting it pollute the datasets;
* ``checkpoint_dir`` / ``resume`` / ``crash_plan`` — crash-safe
  journaling: progress (done actions, every collector's dataset, the
  firehose cursor, the crawl frontier) is checkpointed atomically, a
  :class:`CrashPlan` kills the study at seeded points, and a resumed
  run produces export artefacts byte-identical to an uninterrupted one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.checkpoint import CheckpointJournal, StudyCheckpointer, state_guard
from repro.core.collect.active import ActiveMeasurementDataset, ActiveMeasurements
from repro.core.collect.diddocs import DidDocumentCollector, DidDocumentDataset
from repro.core.collect.feedgens import FeedGeneratorCollector, FeedGeneratorDataset
from repro.core.collect.firehose import FirehoseCollector, FirehoseDataset
from repro.core.collect.identifiers import ListReposCollector, UserIdentifierDataset
from repro.core.collect.labelers import LabelerCollector, LabelerDataset
from repro.core.collect.repos import RepositoriesCollector, RepositoriesDataset
from repro.core.integrity import IntegrityMonitor, IntegrityReport
from repro.identity.handles import HandleResolver
from repro.netsim.faults import (
    AdversarialPlan,
    Adversary,
    AdversaryStats,
    CrashPlan,
    FaultInjector,
    FaultPlan,
    FaultStats,
)
from repro.netsim.psl import default_psl
from repro.obs.profile import populate_final_metrics
from repro.obs.telemetry import Telemetry
from repro.simulation.clock import US_PER_DAY
from repro.simulation.config import (
    DIDDOC_SNAPSHOT_US,
    FEED_COLLECT_END_US,
    FEED_COLLECT_START_US,
    FIREHOSE_COLLECT_END_US,
    FIREHOSE_COLLECT_START_US,
    LABEL_SNAPSHOT_US,
    REPO_SNAPSHOT_US,
)
from repro.simulation.world import World


@dataclass
class StudyDatasets:
    """Everything the analyses consume."""

    identifiers: UserIdentifierDataset
    did_documents: DidDocumentDataset
    repositories: RepositoriesDataset
    firehose: FirehoseDataset
    feed_generators: FeedGeneratorDataset
    labels: LabelerDataset
    active: ActiveMeasurementDataset
    # What the fault injector actually did during the run (None when the
    # study ran fault-free).
    faults: Optional[FaultStats] = None
    # The integrity/quarantine ledger (always present: verification runs
    # on every collected item whether or not an adversary was configured).
    integrity: Optional[IntegrityReport] = None
    # What the adversary actually tampered with (None without a plan).
    adversary: Optional[AdversaryStats] = None
    # The study's telemetry (registry + tracer + phase profile); the
    # report and exporter read it back, None only for hand-built bundles.
    telemetry: Optional[Telemetry] = None


class MeasurementPipeline:
    """Wires the collectors to a world and executes the study.

    ``fault_plan`` (optional) turns on deterministic fault injection: the
    plan's injector is installed on the world's service directory so every
    XRPC call passes its gate, the firehose collector gets the plan's
    disconnect windows, and the non-XRPC probes (identity, DNS, WHOIS)
    draw from the same injector.

    ``adversarial_plan`` (optional) installs a Byzantine :class:`Adversary`
    behind the same directory; the always-on integrity monitor is what
    keeps its corruption out of the datasets.

    ``checkpoint_dir`` enables crash-safe journaling; with ``resume=True``
    a journal found there is restored and completed work is skipped.
    ``crash_plan`` (testing) kills the study at seeded progress ticks.
    """

    def __init__(
        self,
        world: World,
        fault_plan: Optional[FaultPlan] = None,
        adversarial_plan: Optional[AdversarialPlan] = None,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
        crash_plan: Optional[CrashPlan] = None,
        telemetry: Optional[Telemetry] = None,
        workers: int = 1,
        worker_fault_plan=None,
        supervision=None,
    ):
        self.world = world
        # Worker processes for the sharded simulation engine; artefacts
        # are byte-identical at any value (deterministic relay merge).
        # ``worker_fault_plan`` (testing/chaos) injects worker process
        # kills/hangs/slowdowns; the supervisor recovers them without
        # touching artefacts.  ``supervision`` overrides the detection
        # deadlines and restart budget.
        self.workers = max(1, int(workers))
        self.worker_fault_plan = worker_fault_plan
        self.supervision = supervision
        # Per-shard digest segment restored from a checkpoint, verified
        # against the re-simulated world after ``world.run`` (the
        # simulation replays from scratch on resume; the digests prove
        # the replay matches the run the journal was written by).
        self._expected_shard_segment: Optional[dict] = None
        if telemetry is None:
            telemetry = world.telemetry
        else:
            world.set_telemetry(telemetry)
        self.telemetry = telemetry
        self.fault_plan = fault_plan
        self.fault_injector: Optional[FaultInjector] = None
        services = world.services
        if fault_plan is not None and not fault_plan.is_empty():
            self.fault_injector = FaultInjector(fault_plan)
            services.fault_injector = self.fault_injector

        self.adversary: Optional[Adversary] = None
        if adversarial_plan is not None and not adversarial_plan.is_empty():
            self.adversary = Adversary(adversarial_plan, host_of=self._host_of)
            services.adversary = self.adversary

        # Verification is not optional: every collector passes its data
        # through the monitor even when no adversary is configured, so a
        # clean run and a poisoned run differ only in what gets
        # quarantined, never in how clean data is handled.
        self.integrity = IntegrityMonitor(directory=services)

        journal = CheckpointJournal(checkpoint_dir) if checkpoint_dir else None
        self.checkpointer = StudyCheckpointer(
            journal=journal, crash_plan=crash_plan, telemetry=telemetry
        )
        self.checkpointer.bind(self._checkpoint_state)
        tick = self.checkpointer.tick

        self.identifier_collector = ListReposCollector(
            services,
            world.relay.url,
            integrity=self.integrity,
            on_progress=tick,
            telemetry=telemetry,
        )
        self.diddoc_collector = DidDocumentCollector(
            world.resolver,
            injector=self.fault_injector,
            adversary=self.adversary,
            integrity=self.integrity,
            host_of=self._host_of,
            on_progress=tick,
            telemetry=telemetry,
        )
        self.repo_collector = RepositoriesCollector(
            services,
            world.relay.url,
            resolver=world.resolver,
            integrity=self.integrity,
            host_of=self._host_of,
            on_progress=tick,
            telemetry=telemetry,
        )
        self.firehose_collector = FirehoseCollector(
            start_us=FIREHOSE_COLLECT_START_US,
            services=services,
            relay_url=world.relay.url,
            fault_plan=fault_plan,
            adversary=self.adversary,
            integrity=self.integrity,
            on_progress=tick,
            telemetry=telemetry,
        )
        self.labeler_collector = LabelerCollector(
            services,
            world.resolver,
            world.dns,
            integrity=self.integrity,
            on_progress=tick,
            telemetry=telemetry,
        )
        self.feedgen_collector = FeedGeneratorCollector(
            services,
            world.appview.url,
            integrity=self.integrity,
            on_progress=tick,
            telemetry=telemetry,
        )
        self.active_measurements = ActiveMeasurements(
            HandleResolver(world.dns, world.web),
            world.whois,
            world.tranco,
            default_psl(),
            injector=self.fault_injector,
            adversary=self.adversary,
            integrity=self.integrity,
            resolve_did_doc=world.resolver.resolve,
            on_progress=tick,
            telemetry=telemetry,
        )
        if resume:
            state = self.checkpointer.restore()
            if state is not None:
                self._restore(state)
        self._schedule()

    def _host_of(self, did: str) -> str:
        """The URL of the PDS hosting ``did`` (quarantine attribution)."""
        pds = self.world.relay.hosting_pds(did)
        return pds.url if pds is not None else self.world.relay.url

    # -- checkpoint plumbing ----------------------------------------------------

    def _checkpoint_state(self) -> dict:
        fh = self.firehose_collector
        return {
            "seed": self.world.config.seed,
            "scale": self.world.config.scale,
            "identifiers": self.identifier_collector.dataset,
            "diddocs": self.diddoc_collector.dataset,
            "repos": self.repo_collector.dataset,
            "firehose": {
                "dataset": fh.dataset,
                "cursor": fh.cursor,
                "connected": fh._connected,
            },
            "labels": self.labeler_collector.dataset,
            "feeds": self.feedgen_collector.dataset,
            "active": self.active_measurements.dataset,
            "integrity": self.integrity.report,
            "integrity_members": self.integrity.members_state(),
            "adversary": self.adversary.stats if self.adversary else None,
            "faults": (
                self.fault_injector.state() if self.fault_injector else None
            ),
            "telemetry": self.telemetry.state(),
            # Per-shard checkpoint segment: the latest per-shard running
            # digests the engine has produced.  Enough to prove a resumed
            # re-simulation is byte-identical without journaling world
            # state itself.
            "sim_shards": self.world.config.sim_shards,
            "shards": self._shard_segment(),
        }

    def _shard_segment(self) -> Optional[dict]:
        log = self.world.shard_digest_log
        if not log:
            return None
        day_us = max(log)
        return {"day_us": day_us, "digests": log[day_us]}

    def _restore(self, state: dict) -> None:
        state_guard(state, "seed", self.world.config.seed)
        state_guard(state, "scale", self.world.config.scale)
        # Soft guard: checkpoints written before sharding landed carry no
        # shard keys and stay restorable (CHECKPOINT_VERSION unchanged).
        if "sim_shards" in state:
            state_guard(state, "sim_shards", self.world.config.sim_shards)
        self._expected_shard_segment = state.get("shards")
        self.identifier_collector.dataset = state["identifiers"]
        self.diddoc_collector.dataset = state["diddocs"]
        self.repo_collector.dataset = state["repos"]
        fh = state["firehose"]
        self.firehose_collector.dataset = fh["dataset"]
        self.firehose_collector.cursor = fh["cursor"]
        self.firehose_collector._connected = fh["connected"]
        self.labeler_collector.dataset = state["labels"]
        self.feedgen_collector.dataset = state["feeds"]
        self.active_measurements.dataset = state["active"]
        self.integrity.adopt_report(state["integrity"])
        self.integrity.adopt_members(state.get("integrity_members"))
        if self.adversary is not None and state.get("adversary") is not None:
            self.adversary.stats = state["adversary"]
        if self.fault_injector is not None and state.get("faults") is not None:
            self.fault_injector.adopt_state(state["faults"])
        self.telemetry.adopt(state.get("telemetry"))

    def _add_action(self, time_us: int, name: str, fn) -> None:
        """Schedule one journaled action: skip-if-done, save-on-complete."""
        action_id = "%s@%d" % (name, time_us)

        def wrapped(now_us: int) -> None:
            ckpt = self.checkpointer
            ckpt.tick(action_id)
            if ckpt.is_done(action_id):
                return
            # Saves are deferred so the journal only captures action
            # boundaries (datasets + telemetry consistent); the phase
            # profiler records nothing if the action crashes mid-way.
            # Read caches are flushed at the boundary so their hit/miss
            # counters cannot depend on which earlier actions were
            # replayed vs skipped after a crash/resume.
            with ckpt.deferred_saves(), self.telemetry.phase(name):
                self.world.flush_read_caches()
                self.telemetry.emit_event("cache.flush", fields={"phase": name})
                fn(now_us)
            ckpt.mark_done(action_id)
            ckpt.save()

        self.world.schedule(time_us, wrapped)

    def _post_step(self, name: str, fn) -> None:
        """One journaled post-simulation step (same contract as actions)."""
        ckpt = self.checkpointer
        ckpt.tick(name)
        if ckpt.is_done(name):
            return
        with ckpt.deferred_saves(), self.telemetry.phase(name):
            self.world.flush_read_caches()
            self.telemetry.emit_event("cache.flush", fields={"phase": name})
            fn()
        ckpt.mark_done(name)
        ckpt.save()

    # -- schedule ---------------------------------------------------------------

    def _schedule(self) -> None:
        world = self.world
        self.firehose_collector.attach(world)
        t = FIREHOSE_COLLECT_START_US
        while t < FIREHOSE_COLLECT_END_US:
            self._add_action(
                t, "identifiers", lambda now_us: self.identifier_collector.crawl(now_us)
            )
            t += 7 * US_PER_DAY
        self._add_action(DIDDOC_SNAPSHOT_US, "diddoc-snapshot", self._snapshot_did_documents)
        self._add_action(REPO_SNAPSHOT_US, "repo-snapshot", self._snapshot_repositories)
        t = FIREHOSE_COLLECT_START_US
        while t < LABEL_SNAPSHOT_US:
            self._add_action(
                t,
                "labelers",
                lambda now_us: self.labeler_collector.connect_and_backfill(now_us),
            )
            t += US_PER_DAY
        self._add_action(FEED_COLLECT_START_US, "feed-start", self._start_feed_collection)
        t = FEED_COLLECT_START_US + 1
        while t < FEED_COLLECT_END_US:
            self._add_action(t, "feed-sweep", self._feed_crawl_sweep)
            t += 14 * US_PER_DAY

    # -- scheduled actions ------------------------------------------------------

    def _snapshot_did_documents(self, now_us: int) -> None:
        dids = self.identifier_collector.dataset.all_dids()
        if not dids:
            # The DID snapshot depends on at least one identifier crawl.
            self.identifier_collector.crawl(now_us)
            dids = self.identifier_collector.dataset.all_dids()
        self.diddoc_collector.crawl(sorted(dids), now_us)

    def _snapshot_repositories(self, now_us: int) -> None:
        self.identifier_collector.crawl(now_us)
        dids = self.identifier_collector.dataset.all_dids()
        self.repo_collector.crawl(sorted(dids), now_us)
        # Repos reveal labeler accounts and feed generators for discovery.
        self.labeler_collector.discover(self.repo_collector.dataset.labeler_service_dids)
        self.feedgen_collector.discover(
            row.uri for row in self.repo_collector.dataset.feed_generators
        )

    def _start_feed_collection(self, now_us: int) -> None:
        self.feedgen_collector.discover(self.firehose_collector.dataset.feed_generator_records)
        self.feedgen_collector.fetch_metadata(now_us)

    def _feed_crawl_sweep(self, now_us: int) -> None:
        """Bi-weekly sweep: refresh discovery, then crawl posts."""
        self.feedgen_collector.discover(self.firehose_collector.dataset.feed_generator_records)
        self.feedgen_collector.crawl_feed_posts(now_us)

    # -- execution -----------------------------------------------------------------

    def run(self, progress=None) -> StudyDatasets:
        with self.telemetry.tracer.span("study", cat="study"):
            return self._run(progress)

    def _run(self, progress=None) -> StudyDatasets:
        # The world replays deterministically from scratch in every
        # process (fresh World on resume), so the simulation phase is
        # recounted, not accumulated across the checkpoint.
        self.telemetry.reset_phase("simulation")
        with self.telemetry.phase("simulation"):
            self.world.run(
                progress=progress,
                workers=self.workers,
                worker_fault_plan=self.worker_fault_plan,
                supervision=self.supervision,
            )
        self._verify_shard_segment()
        # Close out any firehose disconnect window still open at the end
        # of the collection period: no further live frame will trigger the
        # resume path, so catch up explicitly before reading the dataset.
        self._post_step(
            "post:backfill",
            lambda: self.firehose_collector.backfill(FIREHOSE_COLLECT_END_US),
        )
        # Final labeler discovery/backfill (as of 2024-05-01 in the paper;
        # the firehose may have surfaced labelers the repo snapshot missed).
        self._post_step("post:labeler-final", self._final_labeler_pull)
        # Active identity measurements over the DID-document handles.
        self._post_step("post:active-probes", self._probe_identity)
        self._post_step(
            "post:whois", lambda: self.active_measurements.scan_whois(now_us=LABEL_SNAPSHOT_US)
        )
        self._post_step(
            "post:tranco", lambda: self.active_measurements.cross_reference_tranco()
        )
        # Final journal write: a later resume of a completed study finds
        # every action and step marked done and just re-exports.
        self.checkpointer.save()
        return self.datasets()

    def _verify_shard_segment(self) -> None:
        """Check the resumed re-simulation against the journal's per-shard
        digest segment; a mismatch means the resumed run is NOT the run
        the checkpoint came from (changed code, seed drift, corruption)
        and its artefacts must not be stitched onto the journal's."""
        expected = self._expected_shard_segment
        if expected is None:
            return
        from repro.core.checkpoint import CheckpointError

        actual = self.world.shard_digest_log.get(expected["day_us"])
        if actual is None:
            raise CheckpointError(
                "resumed simulation never reached checkpointed day %d"
                % expected["day_us"]
            )
        if tuple(actual) != tuple(expected["digests"]):
            raise CheckpointError(
                "per-shard digests diverged on resume at day %d: "
                "the re-simulated world does not match the checkpointed run"
                % expected["day_us"]
            )

    def _final_labeler_pull(self) -> None:
        self.labeler_collector.discover(self.firehose_collector.dataset.labeler_service_dids)
        self.labeler_collector.connect_and_backfill(LABEL_SNAPSHOT_US)

    def _probe_identity(self) -> None:
        non_bsky = [
            handle
            for handle in self.diddoc_collector.dataset.handles()
            if not handle.endswith(".bsky.social")
        ]
        self.active_measurements.probe_handles(non_bsky, now_us=LABEL_SNAPSHOT_US)
        self.active_measurements.extract_registered_domains(non_bsky)

    def datasets(self) -> StudyDatasets:
        ds = StudyDatasets(
            identifiers=self.identifier_collector.dataset,
            did_documents=self.diddoc_collector.dataset,
            repositories=self.repo_collector.dataset,
            firehose=self.firehose_collector.dataset,
            feed_generators=self.feedgen_collector.dataset,
            labels=self.labeler_collector.dataset,
            active=self.active_measurements.dataset,
            faults=self.fault_injector.stats if self.fault_injector else None,
            integrity=self.integrity.report,
            adversary=self.adversary.stats if self.adversary else None,
            telemetry=self.telemetry,
        )
        populate_final_metrics(self.telemetry, ds)
        return ds


def run_study(
    config=None,
    progress=None,
    fault_plan: Optional[FaultPlan] = None,
    adversarial_plan: Optional[AdversarialPlan] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    crash_plan: Optional[CrashPlan] = None,
    telemetry: Optional[Telemetry] = None,
    workers: int = 1,
    worker_fault_plan=None,
    supervision=None,
) -> tuple[World, StudyDatasets]:
    """Convenience: build a world, run the full pipeline, return both.

    With ``crash_plan`` the call may raise
    :class:`~repro.netsim.faults.StudyCrashed`; rerun with ``resume=True``
    (and the same ``checkpoint_dir``) to continue from the journal.
    """
    from repro.simulation.config import SimulationConfig

    if config is None:
        config = SimulationConfig.tiny()
    world = World(config)
    pipeline = MeasurementPipeline(
        world,
        fault_plan=fault_plan,
        adversarial_plan=adversarial_plan,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        crash_plan=crash_plan,
        telemetry=telemetry,
        workers=workers,
        worker_fault_plan=worker_fault_plan,
        supervision=supervision,
    )
    datasets = pipeline.run(progress=progress)
    return world, datasets

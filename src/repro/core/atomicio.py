"""Atomic file writes for study artefacts and checkpoints.

Every durable file the study produces goes through write-temp-then-rename:
the bytes land in a temporary sibling first and only an ``os.replace``
(atomic on POSIX within a filesystem) makes them visible under the final
name.  A crash mid-write therefore leaves either the previous complete
file or nothing — never a torn artefact that a resumed run (or a plotting
script) would misread as valid.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Any, Iterable, Sequence


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp file + ``os.replace``)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp_path = path + ".tmp.%d" % os.getpid()
    with open(tmp_path, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    try:
        os.replace(tmp_path, path)
    except OSError:
        os.unlink(tmp_path)
        raise


def atomic_write_text(path: str, text: str) -> None:
    atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(path: str, obj: Any, indent: int = 2) -> None:
    atomic_write_text(path, json.dumps(obj, indent=indent) + "\n")


def atomic_write_csv(path: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Render a CSV fully in memory, then publish it atomically."""
    import io

    buffer = io.StringIO(newline="")
    writer = csv.writer(buffer)
    writer.writerow(headers)
    writer.writerows(rows)
    atomic_write_bytes(path, buffer.getvalue().encode("utf-8"))

# Development entry points.  All targets work from a clean checkout with
# only the Python standard library + pytest; `lint` is skipped gracefully
# when ruff is not installed.

PYTHON ?= python
PYTHONPATH := src

export PYTHONPATH

.PHONY: test test-fast test-faults test-integrity test-telemetry test-shard test-supervision bench bench-perf lint lint-determinism report trace slo check

test:  ## tier-1 suite (must stay green)
	$(PYTHON) -m pytest -x -q

test-fast:  ## tier-1 suite minus the slow scenario worlds
	$(PYTHON) -m pytest -x -q -m "not slow"

test-faults:  ## fault-injection + resilience suite only
	$(PYTHON) -m pytest -x -q tests/netsim/test_faults.py tests/core/test_resilience.py tests/services/test_firehose_retention.py

test-integrity:  ## Byzantine-data hardening + checkpoint/resume suite only
	$(PYTHON) -m pytest -x -q tests/atproto/test_car_fuzz.py tests/atproto/test_crypto.py tests/core/test_integrity.py tests/core/test_checkpoint_resume.py

test-telemetry:  ## metrics registry + tracer + telemetry determinism suite only
	$(PYTHON) -m pytest -x -q tests/obs tests/core/test_telemetry.py

test-shard:  ## sharded-engine determinism suite (workers 1/2/4 byte-identity)
	$(PYTHON) -m pytest -x -q tests/simulation/test_sharding.py

test-supervision:  ## worker-supervision chaos suite (kill/hang/budget-exhaustion byte-identity)
	$(PYTHON) -m pytest -x -q tests/simulation/test_supervision.py

bench:  ## run the perf harness, write + guard BENCH_perf.json
	$(PYTHON) -m repro bench
	$(PYTHON) scripts/check_bench.py BENCH_perf.json

bench-perf:  ## perf benchmarks via pytest-benchmark (also writes BENCH_perf.json)
	$(PYTHON) -m pytest benchmarks/test_perf_pipeline.py --benchmark-only -q

lint-determinism:  ## determinism & shard-safety static analyzer (stdlib-only; fails on any unsuppressed finding)
	$(PYTHON) -m repro lint src tests benchmarks scripts examples --json-out lint-determinism.json

lint:  ## ruff, when available (not part of the baked toolchain)
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping lint"; \
	fi

report:  ## full study at default scale, all tables and figures
	$(PYTHON) -m repro

trace:  ## small traced study; validate the trace + metrics + event-log artefacts
	$(PYTHON) -m repro telemetry --scale 60000 --feed-scale 1200 --quiet \
		--fault-seed 7 --trace-out trace.json --metrics-out metrics.json \
		--events-out events.jsonl
	$(PYTHON) scripts/check_trace.py trace.json metrics.json events.jsonl

slo:  ## small study; validate the slo.json + metrics.prom SLO artefacts
	$(PYTHON) -m repro telemetry --scale 60000 --feed-scale 1200 --quiet \
		--fault-seed 7 --metrics-out metrics.json --slo-out slo.json \
		--events-out events.jsonl
	$(PYTHON) scripts/check_slo.py slo.json metrics.prom

check: test test-faults test-integrity test-telemetry test-shard test-supervision slo lint lint-determinism  ## what CI would run

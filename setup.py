"""Legacy setup shim: lets ``pip install -e .`` work offline without the
``wheel`` package (the environment has no network to fetch build deps)."""

from setuptools import setup

setup()
